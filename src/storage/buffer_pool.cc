#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "check/check.h"
#include "obs/trace.h"

namespace ann {

/// Shared epoch reference: the last copy of a snapshot releases the
/// epoch, which may trigger GC of pages retired while it was pinned.
/// Snapshots must not outlive the pool that issued them.
struct PageSnapshot::EpochPin {
  EpochPin(BufferPool* pool, uint64_t epoch) : pool(pool), epoch(epoch) {}
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  ~EpochPin() { pool->ReleaseEpoch(epoch); }

  BufferPool* pool;
  uint64_t epoch;
};

uint64_t PageSnapshot::epoch() const { return pin_ ? pin_->epoch : 0; }

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    stripe_ = other.stripe_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.dirty_ = nullptr;
  }
  return *this;
}

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(stripe_, frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames,
                       Replacement replacement, size_t num_stripes)
    : disk_(disk),
      capacity_(std::max<size_t>(1, num_frames)),
      replacement_(replacement),
      stripes_pref_(std::max<size_t>(1, num_stripes)) {
  InitStripes();
}

BufferPool::~BufferPool() {
  // Best-effort write-back; errors cannot be reported from a destructor.
  (void)FlushAll();
}

// Latch-free by contract: runs only from the constructor and from Reset,
// both of which require that no other thread touches the pool (each
// stripe is filled through a local handle before publication).
void BufferPool::InitStripes() ANNLIB_NO_THREAD_SAFETY_ANALYSIS {
  const size_t n = std::min(stripes_pref_, capacity_);
  stripes_.clear();
  stripes_.reserve(n);
  const size_t base = capacity_ / n;
  const size_t extra = capacity_ % n;  // first `extra` stripes get one more
  for (size_t s = 0; s < n; ++s) {
    auto stripe = std::make_unique<Stripe>();
    const size_t frames = base + (s < extra ? 1 : 0);
    stripe->frames = std::vector<Frame>(frames);
    stripe->free_frames.reserve(frames);
    for (size_t i = 0; i < frames; ++i) {
      stripe->free_frames.push_back(frames - 1 - i);
    }
    stripes_.push_back(std::move(stripe));
  }
}

Result<PinnedPage> BufferPool::Fetch(PageId id) {
  // Static pools (no batch ever opened) skip the version latch entirely:
  // a reader that races the very first BeginWriteBatch and misses the
  // flag still reads the identity mapping, which is exactly the newest
  // committed state at that point.
  if (!has_versions_.load(std::memory_order_acquire)) {
    return PinPhysical(id, id);
  }
  // Resolve-then-pin is not atomic: between ResolveRead and PinPhysical a
  // racing commit + epoch GC can retire, reclaim, and recycle `physical`
  // as a clone target for an arbitrary logical page, so the pin could
  // land on recycled storage mid-overwrite. A pinned frame, however, can
  // no longer be purged or recycled, so re-resolving after the pin closes
  // the window: a stable answer proves the pinned bytes are a fully
  // committed version of `id` (even in the recycle-for-the-same-page ABA
  // case, the republishing commit's mutations happen-before its
  // version_mu_ release, which happens-before the re-resolve), and an
  // unstable answer drops the pin — whose bytes were never read — and
  // retries. Each extra iteration requires a full commit+GC cycle inside
  // the window, so the loop terminates in practice.
  for (;;) {
    ANN_ASSIGN_OR_RETURN(const PageId physical, ResolveRead(id, nullptr));
    ANN_ASSIGN_OR_RETURN(PinnedPage pin, PinPhysical(physical, id));
    ANN_ASSIGN_OR_RETURN(const PageId check, ResolveRead(id, nullptr));
    if (check == physical) return pin;
  }
}

Result<PinnedPage> BufferPool::Fetch(PageId id, const PageSnapshot& snap) {
  if (!snap.valid()) return Fetch(id);
  // No revalidation needed here: the snapshot's epoch pin keeps every
  // version it can resolve off the free list (a version visible at epoch
  // e is retired at some epoch r > e, and GC requires r <= min active
  // epoch <= e), so the resolved physical page cannot be recycled while
  // the snapshot is alive.
  ANN_ASSIGN_OR_RETURN(const PageId physical, ResolveRead(id, &snap));
  return PinPhysical(physical, id);
}

Result<PageId> BufferPool::ResolveRead(PageId logical,
                                       const PageSnapshot* snap) {
  MutexLock lock(&version_mu_);
  const bool at_snapshot = snap != nullptr && snap->valid();
  // Read-your-writes: the batch owner's current-state reads resolve to
  // its private clones. Snapshot reads are point-in-time and never do.
  if (!at_snapshot && batch_open_ &&
      std::this_thread::get_id() == batch_owner_) {
    auto it = batch_shadow_.find(logical);
    if (it != batch_shadow_.end()) return it->second;
  }
  auto it = versions_.find(logical);
  if (it == versions_.end()) return logical;
  const std::vector<PageVersion>& chain = it->second;
  ANNLIB_DCHECK(!chain.empty());
  if (at_snapshot) {
    const uint64_t epoch = snap->epoch();
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      if (rit->epoch <= epoch) return rit->physical;
    }
    return Status::Internal(
        "BufferPool: snapshot reads below the oldest retained version");
  }
  return chain.back().physical;
}

Result<PinnedPage> BufferPool::PinPhysical(PageId physical, PageId logical) {
  const size_t si = StripeIndexFor(physical);
  Stripe& stripe = *stripes_[si];
  MutexLock lock(&stripe.mu);

  auto it = stripe.page_table.find(physical);
  if (it != stripe.page_table.end()) {
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    obs_hits_->Increment();
    Frame& frame = stripe.frames[it->second];
    if (frame.prefetched) {
      // First demand pin of a prefetched frame: the readahead paid off.
      ClearPrefetched(frame);
      obs_prefetch_hits_->Increment();
    }
    if (frame.in_lru) {
      stripe.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.referenced = true;
    ++frame.pin_count;
    return PinnedPage(this, si, it->second, logical, frame.page.data(),
                      &frame.dirty);
  }

  stats_.pool_misses.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->Increment();
  // Miss span covers victim selection (possible dirty write-back) plus
  // the disk read — the query's IO stall time. Opening/closing a span
  // under the stripe latch is rank-safe: the trace latch (50) ranks
  // after the stripe latch (20).
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "pool_miss");
  span.AddArg("page", physical);
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame(stripe));
  Frame& frame = stripe.frames[fi];
  // The disk read happens under the stripe latch: simple, and concurrent
  // fetches of different pages on other stripes still proceed. (The disk
  // manager's internal latches rank after the stripe latch for exactly
  // this nesting.) This synchronous wait is the query's IO stall — the
  // number async prefetch exists to shrink.
#if !defined(ANNLIB_OBS_DISABLED)
  // The raw monotonic read is deliberate: io.stall is a cross-thread ns
  // counter fed under the stripe latch; ObsScope's phase timers can't.
  const auto stall_start = std::chrono::steady_clock::now();  // lint-ok: see above
#endif
  ANN_RETURN_NOT_OK(disk_->ReadPage(physical, &frame.page));
#if !defined(ANNLIB_OBS_DISABLED)
  obs_io_stall_ns_->Add(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - stall_start)  // lint-ok: ns counter
          .count()));
  obs_io_stall_reads_->Increment();
#endif
  frame.page_id = physical;
  frame.pin_count = 1;
  frame.dirty.store(false, std::memory_order_relaxed);
  frame.referenced = true;
  stripe.page_table.emplace(physical, fi);
  return PinnedPage(this, si, fi, logical, frame.page.data(), &frame.dirty);
}

Result<PinnedPage> BufferPool::PinFresh(PageId physical, PageId logical) {
  const size_t si = StripeIndexFor(physical);
  Stripe& stripe = *stripes_[si];
  MutexLock lock(&stripe.mu);
  // A recycled clone target was purged from the cache when reclaimed (and
  // a disk-fresh one was never cached), but a racing non-snapshot Fetch
  // that resolved the page before its retirement may have transiently
  // re-cached it from disk in the window before that Fetch's post-pin
  // revalidation fails. Adopt such a frame in place: the caller fully
  // overwrites the payload, and the only possible pinners are those
  // doomed readers, which never dereference the bytes.
  if (auto it = stripe.page_table.find(physical);
      it != stripe.page_table.end()) {
    Frame& frame = stripe.frames[it->second];
    ClearPrefetched(frame);  // adopted as a clone target, not a hit
    if (frame.in_lru) {
      stripe.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.dirty.store(false, std::memory_order_relaxed);
    frame.referenced = true;
    ++frame.pin_count;
    return PinnedPage(this, si, it->second, logical, frame.page.data(),
                      &frame.dirty);
  }
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame(stripe));
  Frame& frame = stripe.frames[fi];
  frame.page_id = physical;
  frame.pin_count = 1;
  frame.dirty.store(false, std::memory_order_relaxed);
  frame.referenced = true;
  stripe.page_table.emplace(physical, fi);
  return PinnedPage(this, si, fi, logical, frame.page.data(), &frame.dirty);
}

Result<PinnedPage> BufferPool::NewPage() {
  // AllocatePage takes (and releases) the disk manager's allocation latch
  // before the stripe latch is acquired — no nesting on this path.
  ANN_ASSIGN_OR_RETURN(const PageId id, disk_->AllocatePage());
  {
    MutexLock lock(&version_mu_);
    if (batch_open_ && std::this_thread::get_id() == batch_owner_) {
      batch_created_.emplace(id, true);
    }
  }
  const size_t si = StripeIndexFor(id);
  Stripe& stripe = *stripes_[si];
  MutexLock lock(&stripe.mu);
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame(stripe));
  Frame& frame = stripe.frames[fi];
  frame.page.bytes.fill(std::byte{0});
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty.store(true, std::memory_order_relaxed);
  frame.referenced = true;
  stripe.page_table.emplace(id, fi);
  return PinnedPage(this, si, fi, id, frame.page.data(), &frame.dirty);
}

Result<PinnedPage> BufferPool::FetchForWrite(PageId id) {
  PageId source = kInvalidPageId;
  PageId target = kInvalidPageId;
  {
    MutexLock lock(&version_mu_);
    if (!batch_open_) {
      return Status::InvalidArgument(
          "BufferPool::FetchForWrite without an open write batch");
    }
    if (std::this_thread::get_id() != batch_owner_) {
      return Status::InvalidArgument(
          "BufferPool::FetchForWrite from a thread that did not open the "
          "batch");
    }
    if (batch_created_.count(id) != 0) {
      // Allocated inside this batch: already private, no clone needed.
      target = id;
    } else if (auto it = batch_shadow_.find(id);
               it != batch_shadow_.end()) {
      target = it->second;
    } else {
      source = id;
      if (auto vit = versions_.find(id); vit != versions_.end()) {
        source = vit->second.back().physical;
      }
      ANN_ASSIGN_OR_RETURN(target, AcquirePhysicalLocked());
      batch_shadow_.emplace(id, target);
      // Clone accounting is deferred until the copy succeeds: the obs
      // mirror counter is append-only, so incrementing here would leave
      // it permanently ahead of cow_clones_ if the pins below fail.
    }
  }
  if (source == kInvalidPageId) return PinPhysical(target, id);

  // First touch of this logical page in the batch: copy the committed
  // contents into the private clone.
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "cow_clone");
  span.AddArg("page", id);
  Result<PinnedPage> src_pin = PinPhysical(source, id);
  Result<PinnedPage> dst_pin =
      src_pin.ok() ? PinFresh(target, id) : Result<PinnedPage>(src_pin.status());
  if (!src_pin.ok() || !dst_pin.ok()) {
    // Roll the reservation back so the batch is not left pointing at an
    // uninitialized clone.
    MutexLock lock(&version_mu_);
    batch_shadow_.erase(id);
    free_physical_.push_back(target);
    return src_pin.ok() ? dst_pin.status() : src_pin.status();
  }
  std::memcpy(dst_pin.value().data(), src_pin.value().data(), kPageSize);
  dst_pin.value().MarkDirty();
  {
    MutexLock lock(&version_mu_);
    ++cow_clones_;
  }
  obs_cow_clones_->Increment();
  return std::move(dst_pin.value());
}

Status BufferPool::BeginWriteBatch() {
  MutexLock lock(&version_mu_);
  if (batch_open_) {
    return Status::InvalidArgument(
        "BufferPool::BeginWriteBatch: a write batch is already open "
        "(single-writer contract)");
  }
  batch_open_ = true;
  batch_owner_ = std::this_thread::get_id();
  // From here on every Fetch resolves through the version table.
  has_versions_.store(true, std::memory_order_release);
  return Status::OK();
}

Status BufferPool::CommitWriteBatch() {
  MutexLock lock(&version_mu_);
  if (!batch_open_) {
    return Status::InvalidArgument(
        "BufferPool::CommitWriteBatch without an open write batch");
  }
  if (std::this_thread::get_id() != batch_owner_) {
    return Status::InvalidArgument(
        "BufferPool::CommitWriteBatch from a thread that did not open "
        "the batch");
  }
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "batch_commit");
  span.AddArg("pages", static_cast<uint64_t>(batch_shadow_.size()));
  const uint64_t next = current_epoch_.load(std::memory_order_relaxed) + 1;
  for (const auto& [logical, physical] : batch_shadow_) {
    std::vector<PageVersion>& chain = versions_[logical];
    if (chain.empty()) chain.push_back(PageVersion{0, logical});
    retired_.push_back(RetiredPage{logical, chain.back().physical, next});
    ++pages_retired_;
    obs_retired_->Increment();
    chain.push_back(PageVersion{next, physical});
  }
  batch_shadow_.clear();
  batch_created_.clear();
  batch_open_ = false;
  ++batches_committed_;
  obs_batches_->Increment();
  current_epoch_.store(next, std::memory_order_release);
  RunGcLocked();
  return Status::OK();
}

Status BufferPool::AbortWriteBatch() {
  MutexLock lock(&version_mu_);
  if (!batch_open_) {
    return Status::InvalidArgument(
        "BufferPool::AbortWriteBatch without an open write batch");
  }
  if (std::this_thread::get_id() != batch_owner_) {
    return Status::InvalidArgument(
        "BufferPool::AbortWriteBatch from a thread that did not open the "
        "batch");
  }
  // Purge is best-effort: the batch's own pins must be released before
  // Abort, but a racing non-snapshot Fetch may hold a transient pin on a
  // recycled clone frame (it resolved the page before retirement and is
  // doomed to fail revalidation without reading the bytes). A frame that
  // survives the purge is adopted in place when PinFresh next hands the
  // page out as a clone target.
  for (const auto& [logical, physical] : batch_shadow_) {
    (void)logical;
    (void)PurgeCachedPage(physical);
    free_physical_.push_back(physical);
  }
  for (const auto& [logical, unused] : batch_created_) {
    (void)unused;
    (void)PurgeCachedPage(logical);
    free_physical_.push_back(logical);
  }
  batch_shadow_.clear();
  batch_created_.clear();
  batch_open_ = false;
  return Status::OK();
}

Result<PageSnapshot> BufferPool::OpenSnapshot() {
  MutexLock lock(&version_mu_);
  const uint64_t epoch = current_epoch_.load(std::memory_order_relaxed);
  ++active_epochs_[epoch];
  ++snapshots_opened_;
  obs_snapshots_->Increment();
  return PageSnapshot(std::make_shared<const PageSnapshot::EpochPin>(
      this, epoch));
}

bool BufferPool::PrefetchPage(PageId id, const PageSnapshot& snap,
                              Page* scratch) {
  // Every early return below merely declines the hint; the demand path
  // will fault the page synchronously. See the header for the rules.
  if (has_versions_.load(std::memory_order_acquire) && !snap.valid()) {
    // On a versioned pool a snapshot's epoch pin is what keeps the
    // resolved physical page from being reclaimed and recycled during
    // the latch-free read below. Without one, decline: unlike Fetch, the
    // prefetch path holds no pinned frame to revalidate against, so the
    // ABA defense the demand path relies on is unavailable.
    return false;
  }
  const size_t cap = std::max<size_t>(1, capacity_ / 4);
  if (prefetched_outstanding_.load(std::memory_order_relaxed) >= cap) {
    return false;
  }
  auto resolved = ResolveRead(id, snap.valid() ? &snap : nullptr);
  if (!resolved.ok()) return false;
  const PageId physical = *resolved;
  const size_t si = StripeIndexFor(physical);
  Stripe& stripe = *stripes_[si];
  {
    MutexLock lock(&stripe.mu);
    if (stripe.page_table.find(physical) != stripe.page_table.end()) {
      return false;  // already resident — nothing to warm
    }
  }
  // The disk read runs with NO latch held, into the caller's scratch
  // buffer: demand fetches on this stripe proceed while the prefetch IO
  // is in flight. The snapshot's epoch pin (or the pool being version-
  // free) keeps `physical`'s on-disk bytes immutable for the duration.
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "prefetch_read");
  span.AddArg("page", physical);
#if !defined(ANNLIB_OBS_DISABLED)
  // Raw read for the same reason as io.stall above: a ns counter delta.
  const auto read_start = std::chrono::steady_clock::now();  // lint-ok: see above
#endif
  if (!disk_->ReadPage(physical, scratch).ok()) return false;
#if !defined(ANNLIB_OBS_DISABLED)
  obs_prefetch_ns_->Add(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - read_start)  // lint-ok: ns counter
          .count()));
#endif

  MutexLock lock(&stripe.mu);
  if (stripe.page_table.find(physical) != stripe.page_table.end()) {
    return false;  // a demand fetch won the race; its bytes are the same
  }
  size_t fi;
  if (!stripe.free_frames.empty()) {
    fi = stripe.free_frames.back();
    stripe.free_frames.pop_back();
  } else if (replacement_ == Replacement::kLru) {
    // Hunt a CLEAN unpinned victim from the cold end of the LRU; dirty
    // frames are never written back (or evicted) on behalf of a hint.
    size_t probes = 0;
    auto it = stripe.lru.begin();
    while (it != stripe.lru.end() && probes < kPrefetchVictimProbes &&
           stripe.frames[*it].dirty.load(std::memory_order_relaxed)) {
      ++it;
      ++probes;
    }
    if (it == stripe.lru.end() || probes >= kPrefetchVictimProbes) {
      return false;
    }
    fi = *it;
    Frame& victim = stripe.frames[fi];
    stripe.lru.erase(it);
    victim.in_lru = false;
    ClearPrefetched(victim);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    obs_evictions_->Increment();
    stripe.page_table.erase(victim.page_id);
    victim.page_id = kInvalidPageId;
  } else {
    // CLOCK keeps no eviction-ordered list of clean frames; admit only
    // into free frames rather than sweep the hand on a hint.
    return false;
  }
  Frame& frame = stripe.frames[fi];
  std::memcpy(frame.page.data(), scratch->data(), kPageSize);
  frame.page_id = physical;
  frame.pin_count = 0;
  frame.dirty.store(false, std::memory_order_relaxed);
  frame.referenced = true;
  frame.prefetched = true;
  stripe.page_table.emplace(physical, fi);
  if (replacement_ == Replacement::kLru) {
    // Admitted at the warm end, unpinned: a prefetched frame is always
    // evictable, so readahead never adds pin pressure.
    stripe.lru.push_back(fi);
    frame.lru_pos = std::prev(stripe.lru.end());
    frame.in_lru = true;
  }
  prefetched_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BufferPool::ReleaseEpoch(uint64_t epoch) {
  MutexLock lock(&version_mu_);
  auto it = active_epochs_.find(epoch);
  ANNLIB_DCHECK(it != active_epochs_.end());
  if (it == active_epochs_.end()) return;
  if (--it->second == 0) {
    active_epochs_.erase(it);
    RunGcLocked();
  }
}

void BufferPool::RunGcLocked() {
  if (retired_.empty()) return;
  const uint64_t min_active =
      active_epochs_.empty() ? std::numeric_limits<uint64_t>::max()
                             : active_epochs_.begin()->first;
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "epoch_gc");
  uint64_t reclaimed_here = 0;
  size_t kept = 0;
  for (size_t i = 0; i < retired_.size(); ++i) {
    const RetiredPage rp = retired_[i];
    // A page retired at epoch r is needed only by snapshots whose epoch
    // precedes r; a pinned frame defers reclamation to the next pass.
    if (rp.retire_epoch > min_active || !PurgeCachedPage(rp.physical)) {
      retired_[kept++] = rp;
      continue;
    }
    auto it = versions_.find(rp.logical);
    if (it != versions_.end()) {
      std::vector<PageVersion>& chain = it->second;
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [&](const PageVersion& v) {
                                   return v.physical == rp.physical;
                                 }),
                  chain.end());
    }
    free_physical_.push_back(rp.physical);
    ++pages_reclaimed_;
    obs_reclaimed_->Increment();
    ++reclaimed_here;
  }
  retired_.resize(kept);
  span.AddArg("reclaimed", reclaimed_here);
  span.AddArg("pending", static_cast<uint64_t>(kept));
}

Result<PageId> BufferPool::AcquirePhysicalLocked() {
  if (!free_physical_.empty()) {
    const PageId id = free_physical_.back();
    free_physical_.pop_back();
    return id;
  }
  // Rank-safe: the disk allocation latch (30) nests under the version
  // latch (15).
  return disk_->AllocatePage();
}

bool BufferPool::PurgeCachedPage(PageId physical) {
  const size_t si = StripeIndexFor(physical);
  Stripe& stripe = *stripes_[si];
  MutexLock lock(&stripe.mu);
  auto it = stripe.page_table.find(physical);
  if (it == stripe.page_table.end()) return true;
  Frame& frame = stripe.frames[it->second];
  if (frame.pin_count > 0) return false;
  ClearPrefetched(frame);
  if (frame.in_lru) {
    stripe.lru.erase(frame.lru_pos);
    frame.in_lru = false;
  }
  // Dropped without write-back on purpose: the page is either retired
  // (no snapshot can reach it) or an aborted clone.
  frame.dirty.store(false, std::memory_order_relaxed);
  frame.page_id = kInvalidPageId;
  frame.referenced = false;
  stripe.free_frames.push_back(it->second);
  stripe.page_table.erase(it);
  return true;
}

bool BufferPool::write_batch_open() const {
  MutexLock lock(&version_mu_);
  return batch_open_;
}

VersionStats BufferPool::version_stats() const {
  MutexLock lock(&version_mu_);
  VersionStats vs;
  vs.epoch = current_epoch_.load(std::memory_order_relaxed);
  vs.batches_committed = batches_committed_;
  vs.cow_clones = cow_clones_;
  vs.snapshots_opened = snapshots_opened_;
  vs.pages_retired = pages_retired_;
  vs.pages_reclaimed = pages_reclaimed_;
  vs.live_chains = versions_.size();
  vs.retired_pending = retired_.size();
  vs.free_physical = free_physical_.size();
  return vs;
}

Status BufferPool::FlushAll() {
  for (auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (Frame& frame : stripe->frames) {
      if (frame.page_id != kInvalidPageId) {
        ANN_RETURN_NOT_OK(FlushFrame(*stripe, frame));
      }
    }
  }
  // The version table is in-memory only, so a reopened file resolves every
  // page through the identity mapping. Mirror each chain's newest
  // committed bytes back to the logical id's own disk page, making the
  // on-disk image self-describing. Only safe at quiesce: a live snapshot
  // may still need version 0's bytes, which live at exactly that disk
  // location (chains start at identity), and an open batch's newest
  // version is not committed yet.
  //
  // The mirror must be two-phase. Epoch GC recycles a logical page's
  // retired identity page through free_physical_, where FetchForWrite can
  // adopt it as a clone target for a DIFFERENT logical page — so chain
  // A's newest bytes may physically live on chain B's canonical disk
  // page, and mutual adoption makes cycles possible, which admit no safe
  // in-place write order. Reading every chain's newest bytes into memory
  // before writing any canonical page makes the pass order-independent.
  if (has_versions_.load(std::memory_order_acquire)) {
    MutexLock vlock(&version_mu_);
    if (!batch_open_ && active_epochs_.empty()) {
      std::vector<std::pair<PageId, std::unique_ptr<Page>>> mirror;
      mirror.reserve(versions_.size());
      for (const auto& [logical, chain] : versions_) {
        if (chain.back().physical == logical) continue;
        auto tmp = std::make_unique<Page>();
        ANN_RETURN_NOT_OK(disk_->ReadPage(chain.back().physical, tmp.get()));
        mirror.emplace_back(logical, std::move(tmp));
      }
      for (const auto& [logical, page] : mirror) {
        ANN_RETURN_NOT_OK(disk_->WritePage(logical, *page));
      }
    }
  }
  return Status::OK();
}

Status BufferPool::Reset(size_t num_frames) {
  if (pinned_pages() != 0) {
    return Status::InvalidArgument("BufferPool::Reset with pinned pages");
  }
  {
    // The version table itself survives a Reset (it maps ids, not
    // frames), but dropping the cache under an open batch or a live
    // snapshot would discard uncommitted clones' only copies.
    MutexLock lock(&version_mu_);
    if (batch_open_) {
      return Status::InvalidArgument(
          "BufferPool::Reset with an open write batch");
    }
    if (!active_epochs_.empty()) {
      return Status::InvalidArgument(
          "BufferPool::Reset with live snapshots");
    }
    RunGcLocked();
  }
  ANN_RETURN_NOT_OK(FlushAll());
  capacity_ = std::max<size_t>(1, num_frames);
  InitStripes();
  // Every cached frame (prefetched ones included) was just dropped.
  prefetched_outstanding_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

size_t BufferPool::pinned_pages() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (const Frame& frame : stripe->frames) {
      if (frame.pin_count > 0) ++n;
    }
  }
  return n;
}

size_t BufferPool::cached_pages() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    n += stripe->page_table.size();
  }
  return n;
}

void BufferPool::Unpin(size_t stripe_index, size_t frame_index) {
  Stripe& stripe = *stripes_[stripe_index];
  MutexLock lock(&stripe.mu);
  Frame& frame = stripe.frames[frame_index];
  ANNLIB_DCHECK_GT(frame.pin_count, 0u);
  if (--frame.pin_count == 0 && replacement_ == Replacement::kLru) {
    stripe.lru.push_back(frame_index);
    frame.lru_pos = std::prev(stripe.lru.end());
    frame.in_lru = true;
  }
}

Result<size_t> BufferPool::GetVictimFrame(Stripe& stripe) {
  if (!stripe.free_frames.empty()) {
    const size_t fi = stripe.free_frames.back();
    stripe.free_frames.pop_back();
    return fi;
  }

  size_t fi;
  if (replacement_ == Replacement::kLru) {
    if (stripe.lru.empty()) {
      return Status::OutOfRange("BufferPool: all frames pinned");
    }
    fi = stripe.lru.front();
    stripe.lru.pop_front();
    stripe.frames[fi].in_lru = false;
  } else {
    // CLOCK sweep: skip pinned frames; give referenced frames a second
    // chance. Two full sweeps guarantee a victim unless all are pinned.
    size_t steps = 0;
    const size_t max_steps = 2 * stripe.frames.size() + 1;
    while (true) {
      if (steps++ > max_steps) {
        return Status::OutOfRange("BufferPool: all frames pinned");
      }
      Frame& candidate = stripe.frames[stripe.clock_hand];
      const size_t current = stripe.clock_hand;
      stripe.clock_hand = (stripe.clock_hand + 1) % stripe.frames.size();
      if (candidate.pin_count > 0) continue;
      if (candidate.referenced) {
        candidate.referenced = false;
        continue;
      }
      fi = current;
      break;
    }
  }

  Frame& frame = stripe.frames[fi];
  ClearPrefetched(frame);  // evicted before any demand pin: wasted hint
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  obs_evictions_->Increment();
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "evict");
  span.AddArg("page", frame.page_id);
  ANN_RETURN_NOT_OK(FlushFrame(stripe, frame));
  stripe.page_table.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  return fi;
}

Status BufferPool::FlushFrame(Stripe& /*stripe*/, Frame& frame) {
  if (frame.dirty.load(std::memory_order_relaxed)) {
    ANN_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.page));
    frame.dirty.store(false, std::memory_order_relaxed);
    obs_writebacks_->Increment();
  }
  return Status::OK();
}

}  // namespace ann
