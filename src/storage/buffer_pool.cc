#include "storage/buffer_pool.h"

#include <algorithm>

namespace ann {

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

char* PinnedPage::data() {
  assert(valid());
  return pool_->frames_[frame_].page.data();
}

const char* PinnedPage::data() const {
  assert(valid());
  return pool_->frames_[frame_].page.data();
}

void PinnedPage::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_].dirty = true;
}

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames,
                       Replacement replacement)
    : disk_(disk),
      capacity_(std::max<size_t>(1, num_frames)),
      replacement_(replacement) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
}

BufferPool::~BufferPool() {
  // Best-effort write-back; errors cannot be reported from a destructor.
  (void)FlushAll();
}

Result<PinnedPage> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.pool_hits;
    obs_hits_->Increment();
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.referenced = true;
    ++frame.pin_count;
    return PinnedPage(this, it->second, id);
  }

  ++stats_.pool_misses;
  obs_misses_->Increment();
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame());
  Frame& frame = frames_[fi];
  ANN_RETURN_NOT_OK(disk_->ReadPage(id, &frame.page));
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.referenced = true;
  page_table_.emplace(id, fi);
  return PinnedPage(this, fi, id);
}

Result<PinnedPage> BufferPool::NewPage() {
  ANN_ASSIGN_OR_RETURN(const PageId id, disk_->AllocatePage());
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame());
  Frame& frame = frames_[fi];
  frame.page.bytes.fill(std::byte{0});
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.referenced = true;
  page_table_.emplace(id, fi);
  return PinnedPage(this, fi, id);
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId) {
      ANN_RETURN_NOT_OK(FlushFrame(frame));
    }
  }
  return Status::OK();
}

Status BufferPool::Reset(size_t num_frames) {
  if (pinned_pages() != 0) {
    return Status::InvalidArgument("BufferPool::Reset with pinned pages");
  }
  ANN_RETURN_NOT_OK(FlushAll());
  capacity_ = std::max<size_t>(1, num_frames);
  frames_.assign(capacity_, Frame{});
  free_frames_.clear();
  for (size_t i = 0; i < capacity_; ++i) free_frames_.push_back(capacity_ - 1 - i);
  lru_.clear();
  clock_hand_ = 0;
  page_table_.clear();
  return Status::OK();
}

size_t BufferPool::pinned_pages() const {
  size_t n = 0;
  for (const Frame& frame : frames_) {
    if (frame.pin_count > 0) ++n;
  }
  return n;
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count > 0);
  if (--frame.pin_count == 0 && replacement_ == Replacement::kLru) {
    lru_.push_back(frame_index);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    const size_t fi = free_frames_.back();
    free_frames_.pop_back();
    return fi;
  }

  size_t fi;
  if (replacement_ == Replacement::kLru) {
    if (lru_.empty()) {
      return Status::OutOfRange("BufferPool: all frames pinned");
    }
    fi = lru_.front();
    lru_.pop_front();
    frames_[fi].in_lru = false;
  } else {
    // CLOCK sweep: skip pinned frames; give referenced frames a second
    // chance. Two full sweeps guarantee a victim unless all are pinned.
    size_t steps = 0;
    const size_t max_steps = 2 * capacity_ + 1;
    while (true) {
      if (steps++ > max_steps) {
        return Status::OutOfRange("BufferPool: all frames pinned");
      }
      Frame& candidate = frames_[clock_hand_];
      const size_t current = clock_hand_;
      clock_hand_ = (clock_hand_ + 1) % capacity_;
      if (candidate.pin_count > 0) continue;
      if (candidate.referenced) {
        candidate.referenced = false;
        continue;
      }
      fi = current;
      break;
    }
  }

  Frame& frame = frames_[fi];
  ++stats_.evictions;
  obs_evictions_->Increment();
  ANN_RETURN_NOT_OK(FlushFrame(frame));
  page_table_.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  return fi;
}

Status BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty) {
    ANN_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.page));
    frame.dirty = false;
    obs_writebacks_->Increment();
  }
  return Status::OK();
}

}  // namespace ann
