#include "storage/buffer_pool.h"

#include <algorithm>

#include "check/check.h"
#include "obs/trace.h"

namespace ann {

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    stripe_ = other.stripe_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

// The three pin-protocol accessors below run without the stripe latch by
// design: the pin held by this handle keeps the frame resident, nothing
// can evict or flush it, and the page payload is private to the pinners.
// That guarantee comes from the pin protocol, not a capability the
// analysis can see, so thread-safety analysis is disabled rather than
// faked with a lock acquisition.
char* PinnedPage::data() ANNLIB_NO_THREAD_SAFETY_ANALYSIS {
  ANNLIB_DCHECK(valid());
  return pool_->stripes_[stripe_]->frames[frame_].page.data();
}

const char* PinnedPage::data() const ANNLIB_NO_THREAD_SAFETY_ANALYSIS {
  ANNLIB_DCHECK(valid());
  return pool_->stripes_[stripe_]->frames[frame_].page.data();
}

void PinnedPage::MarkDirty() ANNLIB_NO_THREAD_SAFETY_ANALYSIS {
  ANNLIB_DCHECK(valid());
  // Safe without the stripe latch: the frame is pinned by this handle, so
  // no other thread inspects its dirty bit until it is unpinned.
  pool_->stripes_[stripe_]->frames[frame_].dirty.store(
      true, std::memory_order_relaxed);
}

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(stripe_, frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames,
                       Replacement replacement, size_t num_stripes)
    : disk_(disk),
      capacity_(std::max<size_t>(1, num_frames)),
      replacement_(replacement),
      stripes_pref_(std::max<size_t>(1, num_stripes)) {
  InitStripes();
}

BufferPool::~BufferPool() {
  // Best-effort write-back; errors cannot be reported from a destructor.
  (void)FlushAll();
}

// Latch-free by contract: runs only from the constructor and from Reset,
// both of which require that no other thread touches the pool (each
// stripe is filled through a local handle before publication).
void BufferPool::InitStripes() ANNLIB_NO_THREAD_SAFETY_ANALYSIS {
  const size_t n = std::min(stripes_pref_, capacity_);
  stripes_.clear();
  stripes_.reserve(n);
  const size_t base = capacity_ / n;
  const size_t extra = capacity_ % n;  // first `extra` stripes get one more
  for (size_t s = 0; s < n; ++s) {
    auto stripe = std::make_unique<Stripe>();
    const size_t frames = base + (s < extra ? 1 : 0);
    stripe->frames = std::vector<Frame>(frames);
    stripe->free_frames.reserve(frames);
    for (size_t i = 0; i < frames; ++i) {
      stripe->free_frames.push_back(frames - 1 - i);
    }
    stripes_.push_back(std::move(stripe));
  }
}

Result<PinnedPage> BufferPool::Fetch(PageId id) {
  const size_t si = StripeIndexFor(id);
  Stripe& stripe = *stripes_[si];
  MutexLock lock(&stripe.mu);

  auto it = stripe.page_table.find(id);
  if (it != stripe.page_table.end()) {
    stats_.pool_hits.fetch_add(1, std::memory_order_relaxed);
    obs_hits_->Increment();
    Frame& frame = stripe.frames[it->second];
    if (frame.in_lru) {
      stripe.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.referenced = true;
    ++frame.pin_count;
    return PinnedPage(this, si, it->second, id);
  }

  stats_.pool_misses.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->Increment();
  // Miss span covers victim selection (possible dirty write-back) plus
  // the disk read — the query's IO stall time. Opening/closing a span
  // under the stripe latch is rank-safe: the trace latch (50) ranks
  // after the stripe latch (20).
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "pool_miss");
  span.AddArg("page", id);
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame(stripe));
  Frame& frame = stripe.frames[fi];
  // The disk read happens under the stripe latch: simple, and concurrent
  // fetches of different pages on other stripes still proceed. (The disk
  // manager's internal latches rank after the stripe latch for exactly
  // this nesting.)
  ANN_RETURN_NOT_OK(disk_->ReadPage(id, &frame.page));
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty.store(false, std::memory_order_relaxed);
  frame.referenced = true;
  stripe.page_table.emplace(id, fi);
  return PinnedPage(this, si, fi, id);
}

Result<PinnedPage> BufferPool::NewPage() {
  // AllocatePage takes (and releases) the disk manager's allocation latch
  // before the stripe latch is acquired — no nesting on this path.
  ANN_ASSIGN_OR_RETURN(const PageId id, disk_->AllocatePage());
  const size_t si = StripeIndexFor(id);
  Stripe& stripe = *stripes_[si];
  MutexLock lock(&stripe.mu);
  ANN_ASSIGN_OR_RETURN(const size_t fi, GetVictimFrame(stripe));
  Frame& frame = stripe.frames[fi];
  frame.page.bytes.fill(std::byte{0});
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty.store(true, std::memory_order_relaxed);
  frame.referenced = true;
  stripe.page_table.emplace(id, fi);
  return PinnedPage(this, si, fi, id);
}

Status BufferPool::FlushAll() {
  for (auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (Frame& frame : stripe->frames) {
      if (frame.page_id != kInvalidPageId) {
        ANN_RETURN_NOT_OK(FlushFrame(*stripe, frame));
      }
    }
  }
  return Status::OK();
}

Status BufferPool::Reset(size_t num_frames) {
  if (pinned_pages() != 0) {
    return Status::InvalidArgument("BufferPool::Reset with pinned pages");
  }
  ANN_RETURN_NOT_OK(FlushAll());
  capacity_ = std::max<size_t>(1, num_frames);
  InitStripes();
  return Status::OK();
}

size_t BufferPool::pinned_pages() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (const Frame& frame : stripe->frames) {
      if (frame.pin_count > 0) ++n;
    }
  }
  return n;
}

size_t BufferPool::cached_pages() const {
  size_t n = 0;
  for (const auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    n += stripe->page_table.size();
  }
  return n;
}

void BufferPool::Unpin(size_t stripe_index, size_t frame_index) {
  Stripe& stripe = *stripes_[stripe_index];
  MutexLock lock(&stripe.mu);
  Frame& frame = stripe.frames[frame_index];
  ANNLIB_DCHECK_GT(frame.pin_count, 0u);
  if (--frame.pin_count == 0 && replacement_ == Replacement::kLru) {
    stripe.lru.push_back(frame_index);
    frame.lru_pos = std::prev(stripe.lru.end());
    frame.in_lru = true;
  }
}

Result<size_t> BufferPool::GetVictimFrame(Stripe& stripe) {
  if (!stripe.free_frames.empty()) {
    const size_t fi = stripe.free_frames.back();
    stripe.free_frames.pop_back();
    return fi;
  }

  size_t fi;
  if (replacement_ == Replacement::kLru) {
    if (stripe.lru.empty()) {
      return Status::OutOfRange("BufferPool: all frames pinned");
    }
    fi = stripe.lru.front();
    stripe.lru.pop_front();
    stripe.frames[fi].in_lru = false;
  } else {
    // CLOCK sweep: skip pinned frames; give referenced frames a second
    // chance. Two full sweeps guarantee a victim unless all are pinned.
    size_t steps = 0;
    const size_t max_steps = 2 * stripe.frames.size() + 1;
    while (true) {
      if (steps++ > max_steps) {
        return Status::OutOfRange("BufferPool: all frames pinned");
      }
      Frame& candidate = stripe.frames[stripe.clock_hand];
      const size_t current = stripe.clock_hand;
      stripe.clock_hand = (stripe.clock_hand + 1) % stripe.frames.size();
      if (candidate.pin_count > 0) continue;
      if (candidate.referenced) {
        candidate.referenced = false;
        continue;
      }
      fi = current;
      break;
    }
  }

  Frame& frame = stripe.frames[fi];
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  obs_evictions_->Increment();
  ANNLIB_TRACE_SPAN_NAMED(span, "storage", "evict");
  span.AddArg("page", frame.page_id);
  ANN_RETURN_NOT_OK(FlushFrame(stripe, frame));
  stripe.page_table.erase(frame.page_id);
  frame.page_id = kInvalidPageId;
  return fi;
}

Status BufferPool::FlushFrame(Stripe& /*stripe*/, Frame& frame) {
  if (frame.dirty.load(std::memory_order_relaxed)) {
    ANN_RETURN_NOT_OK(disk_->WritePage(frame.page_id, frame.page));
    frame.dirty.store(false, std::memory_order_relaxed);
    obs_writebacks_->Increment();
  }
  return Status::OK();
}

}  // namespace ann
