#ifndef ANNLIB_STORAGE_BUFFER_POOL_H_
#define ANNLIB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/obs.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace ann {

class BufferPool;

/// \brief RAII pin on a buffer-pool frame.
///
/// While a PinnedPage is alive the underlying frame cannot be evicted.
/// Move-only; unpins on destruction. Call MarkDirty() after modifying the
/// page contents so the frame is written back before eviction.
///
/// page_id() reports the *logical* page id the caller fetched. On the
/// copy-on-write path (FetchForWrite, or any Fetch of a page with
/// published versions) the frame underneath holds a different *physical*
/// page; the translation is the buffer pool's business and callers never
/// see physical ids.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  ~PinnedPage() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  // The payload pointer and the dirty flag are captured under the stripe
  // latch when the pin is taken, and the pin keeps the frame resident, so
  // these accessors are plain pointer reads — no latch, no thread-safety
  // escape hatch needed (the frame cannot be evicted, flushed or reused
  // while this handle is alive).
  char* data() {
    ANNLIB_DCHECK(valid());
    return data_;
  }
  const char* data() const {
    ANNLIB_DCHECK(valid());
    return data_;
  }

  /// Marks the frame dirty (must be called after any mutation). The flag
  /// is atomic because concurrent pinners of one page may both set it;
  /// eviction and flushing read it under the latch once unpinned.
  void MarkDirty() {
    ANNLIB_DCHECK(valid());
    dirty_->store(true, std::memory_order_relaxed);
  }

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, size_t stripe, size_t frame, PageId id,
             char* data, std::atomic<bool>* dirty)
      : pool_(pool),
        stripe_(stripe),
        frame_(frame),
        page_id_(id),
        data_(data),
        dirty_(dirty) {}

  BufferPool* pool_ = nullptr;
  size_t stripe_ = 0;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  std::atomic<bool>* dirty_ = nullptr;
};

/// \brief Epoch-pinning read snapshot over a BufferPool.
///
/// A PageSnapshot freezes the pool's committed state as of the epoch at
/// which it was opened: Fetch(id, snap) resolves each logical page to the
/// newest physical version no later than that epoch. While any snapshot
/// of an epoch is alive, pages superseded after it are retained (epoch GC
/// skips them); the last release of an epoch makes its retired pages
/// reclaimable. Copyable and cheap (shared epoch pin); a default-
/// constructed snapshot is invalid and means "read the current state".
class PageSnapshot {
 public:
  PageSnapshot() = default;

  bool valid() const { return pin_ != nullptr; }
  uint64_t epoch() const;

 private:
  friend class BufferPool;
  struct EpochPin;
  explicit PageSnapshot(std::shared_ptr<const EpochPin> pin)
      : pin_(std::move(pin)) {}
  std::shared_ptr<const EpochPin> pin_;
};

/// Cumulative counters for the versioned-page (COW + epoch) machinery.
/// "retired" counts physical pages superseded by a commit; "reclaimed"
/// counts retired pages whose epoch drained and whose storage went back
/// on the free list — at quiesce (no snapshots, no open batch) the two
/// are equal.
struct VersionStats {
  uint64_t epoch = 0;              ///< current committed epoch
  uint64_t batches_committed = 0;  ///< write batches committed
  uint64_t cow_clones = 0;         ///< FetchForWrite page clones
  uint64_t snapshots_opened = 0;
  uint64_t pages_retired = 0;
  uint64_t pages_reclaimed = 0;
  size_t live_chains = 0;      ///< logical pages with version chains
  size_t retired_pending = 0;  ///< retired, awaiting epoch drain
  size_t free_physical = 0;    ///< reclaimed pages ready for reuse
};

/// Frame replacement policy.
enum class Replacement {
  kLru,    ///< exact least-recently-used (list-based)
  kClock,  ///< second-chance clock sweep (approximates LRU cheaply)
};

inline const char* ToString(Replacement r) {
  return r == Replacement::kClock ? "CLOCK" : "LRU";
}

/// One queryable snapshot of a pool's behaviour: the cumulative I/O
/// counters plus the instantaneous occupancy numbers, so callers get the
/// full picture from a single accessor instead of four.
struct BufferPoolStats {
  IoStats io;             ///< hits, misses, evictions, write-backs
  size_t capacity = 0;    ///< frames in the pool
  size_t cached_pages = 0;
  size_t pinned_pages = 0;

  double hit_rate() const {
    const uint64_t total = io.pool_hits + io.pool_misses;
    return total == 0 ? 0.0 : static_cast<double>(io.pool_hits) / total;
  }
};

/// \brief Fixed-capacity buffer pool over a DiskManager (LRU or CLOCK),
/// safe under concurrent Fetch/Unpin.
///
/// This is the stand-in for the SHORE buffer manager used in the paper's
/// experiments (512 KB = 64 frames of 8 KB by default). All index and
/// baseline page accesses flow through Fetch(), so pool hits/misses — and
/// therefore the simulated I/O cost — reflect each algorithm's true access
/// locality. Frames holding pinned pages are never evicted; Fetch fails
/// with OutOfRange if every candidate frame is pinned.
///
/// Concurrency: frames are partitioned into `num_stripes` stripes by page
/// id (`id % num_stripes`), each stripe owning its own latch, page table,
/// free list and replacement state. A Fetch/Unpin touches exactly one
/// stripe, so readers on different stripes never contend; I/O counters are
/// atomic and exact under any interleaving. With the default single stripe
/// the replacement behaviour is bit-identical to the classic sequential
/// pool (one global LRU/CLOCK); more stripes trade global LRU fidelity for
/// concurrency, the standard DBMS latch-striping compromise. FlushAll and
/// Reset are not safe concurrent with Fetch — call them between runs.
///
/// Lock discipline: every stripe latch carries kMutexRankBufferPoolStripe,
/// so holding two stripe latches at once is a rank violation — full-pool
/// walkers (Stats()/pinned_pages()/cached_pages()/FlushAll and the
/// invariant checker) iterate stripes in index order holding ONE latch at
/// a time, which is why their snapshots are per-stripe-consistent rather
/// than globally atomic. The disk manager's internal latches rank after
/// the stripe latch (Fetch reads from disk under the latch). The version
/// latch (kMutexRankBufferPoolVersion) ranks before the stripe latches:
/// Fetch resolves logical→physical under it first, and epoch GC purges
/// stripe cache entries while holding it.
///
/// **Versioned pages (copy-on-write + epoch snapshots).** Page ids handed
/// out by NewPage are *logical* ids and stay valid forever. A writer
/// brackets its mutations with BeginWriteBatch/CommitWriteBatch and edits
/// pages through FetchForWrite, which clones the current physical page
/// into a fresh one private to the batch. Commit publishes all clones
/// atomically under a new epoch and retires the superseded physical
/// pages; OpenSnapshot pins the current epoch so concurrent readers keep
/// resolving every logical id to the version they started with. Retired
/// pages are reclaimed (returned to a physical free list reused by later
/// clones) as soon as no snapshot's epoch precedes their retire epoch.
///
/// Concurrency contract for versioned pools: one writer at a time (a
/// second BeginWriteBatch fails). Readers that need a stable point-in-
/// time image must read through snapshots; a plain Fetch racing a commit
/// returns SOME fully committed version of the page (pre- or post-batch,
/// never torn or recycled bytes — the pin is revalidated against the
/// version table and retried if a commit+GC cycle recycled the resolved
/// physical page underneath it), and the batch owner's own Fetch
/// resolves to its uncommitted shadow pages (read-your-writes). Static
/// pools (no batches ever) are unaffected: Fetch takes a lock-free fast
/// path straight to the stripes.
class BufferPool {
 public:
  /// \param num_frames pool capacity in pages (>= 1).
  /// \param num_stripes latch stripes (clamped to [1, num_frames]); frames
  ///   are split evenly across stripes.
  BufferPool(DiskManager* disk, size_t num_frames,
             Replacement replacement = Replacement::kLru,
             size_t num_stripes = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins logical page `id` at its newest committed version (the batch
  /// owner sees its own uncommitted clones), reading from disk on a miss.
  /// Thread-safe; see the class comment for the versioned-pool contract.
  Result<PinnedPage> Fetch(PageId id);

  /// Pins logical page `id` as of `snap`'s epoch. An invalid snapshot
  /// reads the current state. Thread-safe.
  Result<PinnedPage> Fetch(PageId id, const PageSnapshot& snap);

  /// Allocates a new page on disk and pins it (zero-filled, marked dirty).
  /// Thread-safe. Inside a write batch the page is private to the batch
  /// until commit (an aborted batch frees it for clone reuse).
  Result<PinnedPage> NewPage();

  // --- Versioned page API (copy-on-write + epoch snapshots) -------------

  /// Pins a *writable* copy of logical page `id` for the open write
  /// batch: the first call clones the current version into a fresh
  /// physical page (the clone is reused on subsequent calls). Only the
  /// thread that opened the batch may call this. Fails with
  /// InvalidArgument when no batch is open.
  Result<PinnedPage> FetchForWrite(PageId id);

  /// Opens a single-writer batch. All FetchForWrite clones and NewPage
  /// allocations until CommitWriteBatch stay invisible to other threads.
  Status BeginWriteBatch();

  /// Publishes every page cloned by the batch under a new epoch, retires
  /// the superseded physical pages, and runs epoch GC. No pins on the
  /// batch's clones may be outstanding.
  Status CommitWriteBatch();

  /// Drops the batch's clones (their storage is recycled) without
  /// publishing. Pages allocated by NewPage inside the batch are recycled
  /// too — the caller's own bookkeeping is its responsibility.
  Status AbortWriteBatch();

  /// Pins the current committed epoch and returns a handle for
  /// snapshot-relative Fetch. Thread-safe.
  Result<PageSnapshot> OpenSnapshot();

  /// Warms the cache with logical page `id` ahead of a demand Fetch — the
  /// asynchronous-readahead entry point (called from the Prefetcher's IO
  /// thread; `scratch` is the caller's reusable read buffer). Purely
  /// advisory: returns true when the page was admitted, false when the
  /// hint was declined, and correctness NEVER depends on the answer — a
  /// declined hint just means the demand path faults synchronously.
  ///
  /// Admission rules (the "do no harm" contract):
  ///  - never evicts a pinned or dirty frame (clean coldest-LRU victim or
  ///    a free frame only; under CLOCK replacement, free frames only);
  ///  - at most capacity/4 admitted-but-unread frames at a time, so
  ///    readahead cannot wash out the demand working set;
  ///  - on a versioned pool a valid snapshot is required: its epoch pin
  ///    keeps the resolved physical page from being reclaimed and
  ///    recycled during the latch-free disk read (the demand path's
  ///    pin-and-revalidate defense is unavailable here, so a hint with no
  ///    snapshot on a versioned pool is declined outright);
  ///  - callers must not be concurrently dirtying the hinted page through
  ///    pins (the engine's read-only traversal guarantees this; dirty
  ///    *cached* copies are harmless — a resident page declines the hint).
  ///
  /// The disk read runs with NO pool latch held: a synchronous faulter on
  /// the same stripe proceeds while the prefetch IO is in flight, which
  /// is the entire point of the background thread.
  bool PrefetchPage(PageId id, const PageSnapshot& snap, Page* scratch);

  /// Current committed epoch (0 until the first commit).
  uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  bool write_batch_open() const;

  /// Snapshot of the COW/epoch counters. Takes the version latch.
  VersionStats version_stats() const;

  /// Writes back all dirty frames (pages stay cached). Not concurrent-safe
  /// with writers holding pins.
  Status FlushAll();

  /// Flushes and drops every cached page, then changes capacity. All pages
  /// must be unpinned. Used by benchmarks to switch between the large
  /// build-time pool and the small query-time pool. Keeps the stripe count.
  Status Reset(size_t num_frames);

  size_t capacity() const { return capacity_; }
  size_t num_stripes() const { return stripes_.size(); }
  Replacement replacement() const { return replacement_; }
  size_t pinned_pages() const;
  size_t cached_pages() const;

  IoStats stats() const { return stats_.Load(); }
  void ResetStats() { stats_.Reset(); }

  /// Full public statistics snapshot (counters + occupancy). Takes each
  /// stripe latch in index order, one at a time (see class comment).
  BufferPoolStats Stats() const {
    return BufferPoolStats{stats(), capacity_, cached_pages(),
                           pinned_pages()};
  }

  DiskManager* disk() const { return disk_; }

 private:
  friend class PinnedPage;
  friend struct PageSnapshot::EpochPin;
  // Structural validator and fault injector (src/check): they walk (and,
  // for the test peer, deliberately corrupt) the stripe state under the
  // stripe latches.
  friend Status CheckBufferPoolInvariants(const BufferPool& pool);
  friend class BufferPoolTestPeer;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    // Atomic because MarkDirty runs without the stripe latch (the frame is
    // pinned) and concurrent pinners of one page may both set it; eviction
    // and flushing read it under the latch with no writer possible (only
    // unpinned frames are flushed). Relaxed is enough for a sticky flag.
    std::atomic<bool> dirty{false};
    bool in_lru = false;
    bool referenced = false;  // CLOCK second-chance bit
    // Admitted by PrefetchPage and not yet demanded. Cleared (and the
    // outstanding-prefetch budget refunded) on first pin, eviction or
    // purge; a pin that clears it counts one prefetch hit.
    bool prefetched = false;
    std::list<size_t>::iterator lru_pos;
  };

  /// One latch domain: a fixed slice of the pool's frames plus the lookup
  /// and replacement state for the pages hashed to it. All state hangs off
  /// `mu`; Frame fields inherit the guard through the `frames` vector
  /// (except the pin-protocol accesses in PinnedPage, documented there).
  struct Stripe {
    mutable Mutex mu{"bufferpool.stripe", kMutexRankBufferPoolStripe};
    std::vector<Frame> frames ANNLIB_GUARDED_BY(mu);
    std::vector<size_t> free_frames ANNLIB_GUARDED_BY(mu);
    // front = least recently used, unpinned only
    std::list<size_t> lru ANNLIB_GUARDED_BY(mu);
    size_t clock_hand ANNLIB_GUARDED_BY(mu) = 0;
    std::unordered_map<PageId, size_t> page_table ANNLIB_GUARDED_BY(mu);
  };

  /// One link in a logical page's version chain: the physical page that
  /// held the logical page's contents from `epoch` until superseded.
  struct PageVersion {
    uint64_t epoch = 0;
    PageId physical = kInvalidPageId;
  };

  /// A physical page superseded at `retire_epoch`, awaiting epoch drain.
  struct RetiredPage {
    PageId logical = kInvalidPageId;
    PageId physical = kInvalidPageId;
    uint64_t retire_epoch = 0;
  };

  size_t StripeIndexFor(PageId id) const { return id % stripes_.size(); }
  void Unpin(size_t stripe_index, size_t frame_index);
  // Returns a frame index available for (re)use within the stripe,
  // evicting its least recently used unpinned frame if necessary.
  Result<size_t> GetVictimFrame(Stripe& stripe) ANNLIB_REQUIRES(stripe.mu);
  Status FlushFrame(Stripe& stripe, Frame& frame)
      ANNLIB_REQUIRES(stripe.mu);
  void InitStripes();

  /// Pins `physical` (reading from disk on a miss) but stamps the handle
  /// with `logical` — the translated Fetch path.
  Result<PinnedPage> PinPhysical(PageId physical, PageId logical);
  /// Grabs a frame for `physical` without a disk read (contents will be
  /// fully overwritten) — the COW clone-target path.
  Result<PinnedPage> PinFresh(PageId physical, PageId logical);

  /// Resolves `logical` to the physical page to read: the batch owner's
  /// shadow if any, else the newest committed version, or — with `snap`
  /// valid — the newest version no later than the snapshot epoch.
  Result<PageId> ResolveRead(PageId logical, const PageSnapshot* snap);

  /// Drops an epoch reference; the last release triggers GC.
  void ReleaseEpoch(uint64_t epoch);

  /// Reclaims every retired page whose retire epoch no live snapshot
  /// precedes: purges it from the stripe cache (skipping pinned frames —
  /// retried next pass), trims its chain link, and recycles its storage.
  void RunGcLocked() ANNLIB_REQUIRES(version_mu_);

  /// Takes a physical page off the free list, or allocates from disk.
  Result<PageId> AcquirePhysicalLocked() ANNLIB_REQUIRES(version_mu_);

  /// Drops `physical` from its stripe's cache so its frame can be reused.
  /// Returns false if the frame is currently pinned.
  bool PurgeCachedPage(PageId physical);

  /// Clears a frame's prefetched mark and refunds the outstanding-
  /// prefetch budget (no-op when not set). Callers hold the stripe latch;
  /// the counter itself is atomic.
  void ClearPrefetched(Frame& frame) {
    if (frame.prefetched) {
      frame.prefetched = false;
      prefetched_outstanding_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Validates one stripe's bookkeeping (defined in check/invariants.cc;
  /// the public entry point CheckBufferPoolInvariants takes the latch and
  /// loops over stripes).
  static Status CheckStripeInvariants(const BufferPool& pool, size_t si,
                                      const Stripe& stripe)
      ANNLIB_REQUIRES(stripe.mu);

  /// Validates the version table: chain monotonicity, physical-page
  /// uniqueness across chains / free list / batch shadows, retired-page
  /// accounting (retired == reclaimed + pending), epoch refcounts, and
  /// batch-state coherence (defined in check/invariants.cc).
  static Status CheckVersionInvariants(const BufferPool& pool)
      ANNLIB_REQUIRES(pool.version_mu_);

  DiskManager* disk_;
  size_t capacity_;
  Replacement replacement_;
  size_t stripes_pref_;  // requested stripe count, re-clamped on Reset
  std::vector<std::unique_ptr<Stripe>> stripes_;
  AtomicIoStats stats_;

  // Frames admitted by PrefetchPage and not yet demanded/evicted; capped
  // at capacity/4 so readahead cannot wash out the demand working set.
  std::atomic<size_t> prefetched_outstanding_{0};
  // LRU probes from the cold end when hunting a clean prefetch victim;
  // past this many consecutive dirty frames the hint is declined.
  static constexpr size_t kPrefetchVictimProbes = 8;

  // --- Version state (logical→physical translation, epochs, GC) ---------
  mutable Mutex version_mu_{"bufferpool.version",
                            kMutexRankBufferPoolVersion};
  // Version chains, keyed by logical id; a logical page absent from the
  // map is identity-mapped (physical == logical). Entries are sorted by
  // strictly increasing epoch; the back is the current version.
  std::unordered_map<PageId, std::vector<PageVersion>> versions_
      ANNLIB_GUARDED_BY(version_mu_);
  std::vector<RetiredPage> retired_ ANNLIB_GUARDED_BY(version_mu_);
  // Reclaimed physical pages, reusable as clone targets. Never handed out
  // as logical ids: a page that has carried a logical identity may only
  // ever serve as backing storage afterwards.
  std::vector<PageId> free_physical_ ANNLIB_GUARDED_BY(version_mu_);
  // Live snapshot refcounts per epoch (ordered: begin() = oldest).
  std::map<uint64_t, uint32_t> active_epochs_ ANNLIB_GUARDED_BY(version_mu_);
  std::atomic<uint64_t> current_epoch_{0};
  // True once any batch/version exists — gates the Fetch fast path.
  std::atomic<bool> has_versions_{false};

  bool batch_open_ ANNLIB_GUARDED_BY(version_mu_) = false;
  std::thread::id batch_owner_ ANNLIB_GUARDED_BY(version_mu_);
  // logical → private physical clone, for the open batch.
  std::unordered_map<PageId, PageId> batch_shadow_
      ANNLIB_GUARDED_BY(version_mu_);
  // Logical pages created (NewPage) inside the open batch; identity-
  // mapped and already private, so FetchForWrite skips the clone.
  std::unordered_map<PageId, bool> batch_created_
      ANNLIB_GUARDED_BY(version_mu_);

  // Cumulative version counters (exact, guarded) with obs mirrors below.
  uint64_t batches_committed_ ANNLIB_GUARDED_BY(version_mu_) = 0;
  uint64_t cow_clones_ ANNLIB_GUARDED_BY(version_mu_) = 0;
  uint64_t snapshots_opened_ ANNLIB_GUARDED_BY(version_mu_) = 0;
  uint64_t pages_retired_ ANNLIB_GUARDED_BY(version_mu_) = 0;
  uint64_t pages_reclaimed_ ANNLIB_GUARDED_BY(version_mu_) = 0;

  // Global-registry mirrors of stats_ (handles resolved once, here).
  obs::Counter* obs_hits_ = obs::GetCounter("storage.pool.hits");
  obs::Counter* obs_misses_ = obs::GetCounter("storage.pool.misses");
  obs::Counter* obs_evictions_ = obs::GetCounter("storage.pool.evictions");
  obs::Counter* obs_writebacks_ = obs::GetCounter("storage.pool.writebacks");
  obs::Counter* obs_cow_clones_ = obs::GetCounter("storage.cow_clones");
  obs::Counter* obs_snapshots_ = obs::GetCounter("storage.snapshots_opened");
  obs::Counter* obs_batches_ = obs::GetCounter("storage.write_batches");
  obs::Counter* obs_retired_ =
      obs::GetCounter("storage.epoch_pages_retired");
  obs::Counter* obs_reclaimed_ =
      obs::GetCounter("storage.epoch_pages_reclaimed");
  // Out-of-core instrumentation. io.stall_ns is the wall time demand
  // fetches spend blocked on a synchronous disk read (the PinPhysical
  // miss path); prefetch reads are timed separately under
  // io.prefetch_ns, so stall/prefetch split total read time into "the
  // query waited" vs "the IO thread overlapped". Atomic counters, not a
  // PhaseTimer: misses happen concurrently on many threads and
  // PhaseTimers are unsynchronized by contract.
  obs::Counter* obs_io_stall_ns_ = obs::GetCounter("storage.io.stall_ns");
  obs::Counter* obs_io_stall_reads_ =
      obs::GetCounter("storage.io.stall_reads");
  obs::Counter* obs_prefetch_ns_ =
      obs::GetCounter("storage.io.prefetch_ns");
  obs::Counter* obs_prefetch_hits_ =
      obs::GetCounter("storage.prefetch.hits");
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_BUFFER_POOL_H_
