#ifndef ANNLIB_STORAGE_BUFFER_POOL_H_
#define ANNLIB_STORAGE_BUFFER_POOL_H_

#include <cassert>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/obs.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace ann {

class BufferPool;

/// \brief RAII pin on a buffer-pool frame.
///
/// While a PinnedPage is alive the underlying frame cannot be evicted.
/// Move-only; unpins on destruction. Call MarkDirty() after modifying the
/// page contents so the frame is written back before eviction.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  ~PinnedPage() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  char* data();
  const char* data() const;

  /// Marks the frame dirty (must be called after any mutation).
  void MarkDirty();

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, size_t frame, PageId id)
      : pool_(pool), frame_(frame), page_id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// Frame replacement policy.
enum class Replacement {
  kLru,    ///< exact least-recently-used (list-based)
  kClock,  ///< second-chance clock sweep (approximates LRU cheaply)
};

inline const char* ToString(Replacement r) {
  return r == Replacement::kClock ? "CLOCK" : "LRU";
}

/// One queryable snapshot of a pool's behaviour: the cumulative I/O
/// counters plus the instantaneous occupancy numbers, so callers get the
/// full picture from a single accessor instead of four.
struct BufferPoolStats {
  IoStats io;             ///< hits, misses, evictions, write-backs
  size_t capacity = 0;    ///< frames in the pool
  size_t cached_pages = 0;
  size_t pinned_pages = 0;

  double hit_rate() const {
    const uint64_t total = io.pool_hits + io.pool_misses;
    return total == 0 ? 0.0 : static_cast<double>(io.pool_hits) / total;
  }
};

/// \brief Fixed-capacity buffer pool over a DiskManager (LRU or CLOCK).
///
/// This is the stand-in for the SHORE buffer manager used in the paper's
/// experiments (512 KB = 64 frames of 8 KB by default). All index and
/// baseline page accesses flow through Fetch(), so pool hits/misses — and
/// therefore the simulated I/O cost — reflect each algorithm's true access
/// locality. Frames holding pinned pages are never evicted; Fetch fails
/// with OutOfRange if every frame is pinned.
class BufferPool {
 public:
  /// \param num_frames pool capacity in pages (>= 1).
  BufferPool(DiskManager* disk, size_t num_frames,
             Replacement replacement = Replacement::kLru);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id`, reading it from disk on a miss.
  Result<PinnedPage> Fetch(PageId id);

  /// Allocates a new page on disk and pins it (zero-filled, marked dirty).
  Result<PinnedPage> NewPage();

  /// Writes back all dirty frames (pages stay cached).
  Status FlushAll();

  /// Flushes and drops every cached page, then changes capacity. All pages
  /// must be unpinned. Used by benchmarks to switch between the large
  /// build-time pool and the small query-time pool.
  Status Reset(size_t num_frames);

  size_t capacity() const { return capacity_; }
  Replacement replacement() const { return replacement_; }
  size_t pinned_pages() const;
  size_t cached_pages() const { return page_table_.size(); }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Full public statistics snapshot (counters + occupancy).
  BufferPoolStats Stats() const {
    return BufferPoolStats{stats_, capacity_, cached_pages(), pinned_pages()};
  }

  DiskManager* disk() const { return disk_; }

 private:
  friend class PinnedPage;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool in_lru = false;
    bool referenced = false;  // CLOCK second-chance bit
    std::list<size_t>::iterator lru_pos;
  };

  void Unpin(size_t frame_index);
  // Returns a frame index available for (re)use, evicting the least
  // recently used unpinned frame if necessary.
  Result<size_t> GetVictimFrame();
  Status FlushFrame(Frame& frame);

  DiskManager* disk_;
  size_t capacity_;
  Replacement replacement_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = least recently used, unpinned only
  size_t clock_hand_ = 0;
  std::unordered_map<PageId, size_t> page_table_;
  IoStats stats_;

  // Global-registry mirrors of stats_ (handles resolved once, here).
  obs::Counter* obs_hits_ = obs::GetCounter("storage.pool.hits");
  obs::Counter* obs_misses_ = obs::GetCounter("storage.pool.misses");
  obs::Counter* obs_evictions_ = obs::GetCounter("storage.pool.evictions");
  obs::Counter* obs_writebacks_ = obs::GetCounter("storage.pool.writebacks");
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_BUFFER_POOL_H_
