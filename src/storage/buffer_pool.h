#ifndef ANNLIB_STORAGE_BUFFER_POOL_H_
#define ANNLIB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/obs.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace ann {

class BufferPool;

/// \brief RAII pin on a buffer-pool frame.
///
/// While a PinnedPage is alive the underlying frame cannot be evicted.
/// Move-only; unpins on destruction. Call MarkDirty() after modifying the
/// page contents so the frame is written back before eviction.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  ~PinnedPage() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  char* data();
  const char* data() const;

  /// Marks the frame dirty (must be called after any mutation).
  void MarkDirty();

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, size_t stripe, size_t frame, PageId id)
      : pool_(pool), stripe_(stripe), frame_(frame), page_id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t stripe_ = 0;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// Frame replacement policy.
enum class Replacement {
  kLru,    ///< exact least-recently-used (list-based)
  kClock,  ///< second-chance clock sweep (approximates LRU cheaply)
};

inline const char* ToString(Replacement r) {
  return r == Replacement::kClock ? "CLOCK" : "LRU";
}

/// One queryable snapshot of a pool's behaviour: the cumulative I/O
/// counters plus the instantaneous occupancy numbers, so callers get the
/// full picture from a single accessor instead of four.
struct BufferPoolStats {
  IoStats io;             ///< hits, misses, evictions, write-backs
  size_t capacity = 0;    ///< frames in the pool
  size_t cached_pages = 0;
  size_t pinned_pages = 0;

  double hit_rate() const {
    const uint64_t total = io.pool_hits + io.pool_misses;
    return total == 0 ? 0.0 : static_cast<double>(io.pool_hits) / total;
  }
};

/// \brief Fixed-capacity buffer pool over a DiskManager (LRU or CLOCK),
/// safe under concurrent Fetch/Unpin.
///
/// This is the stand-in for the SHORE buffer manager used in the paper's
/// experiments (512 KB = 64 frames of 8 KB by default). All index and
/// baseline page accesses flow through Fetch(), so pool hits/misses — and
/// therefore the simulated I/O cost — reflect each algorithm's true access
/// locality. Frames holding pinned pages are never evicted; Fetch fails
/// with OutOfRange if every candidate frame is pinned.
///
/// Concurrency: frames are partitioned into `num_stripes` stripes by page
/// id (`id % num_stripes`), each stripe owning its own latch, page table,
/// free list and replacement state. A Fetch/Unpin touches exactly one
/// stripe, so readers on different stripes never contend; I/O counters are
/// atomic and exact under any interleaving. With the default single stripe
/// the replacement behaviour is bit-identical to the classic sequential
/// pool (one global LRU/CLOCK); more stripes trade global LRU fidelity for
/// concurrency, the standard DBMS latch-striping compromise. FlushAll and
/// Reset are not safe concurrent with Fetch — call them between runs.
///
/// Lock discipline: every stripe latch carries kMutexRankBufferPoolStripe,
/// so holding two stripe latches at once is a rank violation — full-pool
/// walkers (Stats()/pinned_pages()/cached_pages()/FlushAll and the
/// invariant checker) iterate stripes in index order holding ONE latch at
/// a time, which is why their snapshots are per-stripe-consistent rather
/// than globally atomic. The disk manager's internal latches rank after
/// the stripe latch (Fetch reads from disk under the latch).
class BufferPool {
 public:
  /// \param num_frames pool capacity in pages (>= 1).
  /// \param num_stripes latch stripes (clamped to [1, num_frames]); frames
  ///   are split evenly across stripes.
  BufferPool(DiskManager* disk, size_t num_frames,
             Replacement replacement = Replacement::kLru,
             size_t num_stripes = 1);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Pins page `id`, reading it from disk on a miss. Thread-safe.
  Result<PinnedPage> Fetch(PageId id);

  /// Allocates a new page on disk and pins it (zero-filled, marked dirty).
  /// Thread-safe.
  Result<PinnedPage> NewPage();

  /// Writes back all dirty frames (pages stay cached). Not concurrent-safe
  /// with writers holding pins.
  Status FlushAll();

  /// Flushes and drops every cached page, then changes capacity. All pages
  /// must be unpinned. Used by benchmarks to switch between the large
  /// build-time pool and the small query-time pool. Keeps the stripe count.
  Status Reset(size_t num_frames);

  size_t capacity() const { return capacity_; }
  size_t num_stripes() const { return stripes_.size(); }
  Replacement replacement() const { return replacement_; }
  size_t pinned_pages() const;
  size_t cached_pages() const;

  IoStats stats() const { return stats_.Load(); }
  void ResetStats() { stats_.Reset(); }

  /// Full public statistics snapshot (counters + occupancy). Takes each
  /// stripe latch in index order, one at a time (see class comment).
  BufferPoolStats Stats() const {
    return BufferPoolStats{stats(), capacity_, cached_pages(),
                           pinned_pages()};
  }

  DiskManager* disk() const { return disk_; }

 private:
  friend class PinnedPage;
  // Structural validator and fault injector (src/check): they walk (and,
  // for the test peer, deliberately corrupt) the stripe state under the
  // stripe latches.
  friend Status CheckBufferPoolInvariants(const BufferPool& pool);
  friend class BufferPoolTestPeer;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    // Atomic because MarkDirty runs without the stripe latch (the frame is
    // pinned) and concurrent pinners of one page may both set it; eviction
    // and flushing read it under the latch with no writer possible (only
    // unpinned frames are flushed). Relaxed is enough for a sticky flag.
    std::atomic<bool> dirty{false};
    bool in_lru = false;
    bool referenced = false;  // CLOCK second-chance bit
    std::list<size_t>::iterator lru_pos;
  };

  /// One latch domain: a fixed slice of the pool's frames plus the lookup
  /// and replacement state for the pages hashed to it. All state hangs off
  /// `mu`; Frame fields inherit the guard through the `frames` vector
  /// (except the pin-protocol accesses in PinnedPage, documented there).
  struct Stripe {
    mutable Mutex mu{"bufferpool.stripe", kMutexRankBufferPoolStripe};
    std::vector<Frame> frames ANNLIB_GUARDED_BY(mu);
    std::vector<size_t> free_frames ANNLIB_GUARDED_BY(mu);
    // front = least recently used, unpinned only
    std::list<size_t> lru ANNLIB_GUARDED_BY(mu);
    size_t clock_hand ANNLIB_GUARDED_BY(mu) = 0;
    std::unordered_map<PageId, size_t> page_table ANNLIB_GUARDED_BY(mu);
  };

  size_t StripeIndexFor(PageId id) const { return id % stripes_.size(); }
  void Unpin(size_t stripe_index, size_t frame_index);
  // Returns a frame index available for (re)use within the stripe,
  // evicting its least recently used unpinned frame if necessary.
  Result<size_t> GetVictimFrame(Stripe& stripe) ANNLIB_REQUIRES(stripe.mu);
  Status FlushFrame(Stripe& stripe, Frame& frame)
      ANNLIB_REQUIRES(stripe.mu);
  void InitStripes();

  /// Validates one stripe's bookkeeping (defined in check/invariants.cc;
  /// the public entry point CheckBufferPoolInvariants takes the latch and
  /// loops over stripes).
  static Status CheckStripeInvariants(const BufferPool& pool, size_t si,
                                      const Stripe& stripe)
      ANNLIB_REQUIRES(stripe.mu);

  DiskManager* disk_;
  size_t capacity_;
  Replacement replacement_;
  size_t stripes_pref_;  // requested stripe count, re-clamped on Reset
  std::vector<std::unique_ptr<Stripe>> stripes_;
  AtomicIoStats stats_;

  // Global-registry mirrors of stats_ (handles resolved once, here).
  obs::Counter* obs_hits_ = obs::GetCounter("storage.pool.hits");
  obs::Counter* obs_misses_ = obs::GetCounter("storage.pool.misses");
  obs::Counter* obs_evictions_ = obs::GetCounter("storage.pool.evictions");
  obs::Counter* obs_writebacks_ = obs::GetCounter("storage.pool.writebacks");
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_BUFFER_POOL_H_
