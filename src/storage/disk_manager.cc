#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"

namespace ann {

Result<PageId> MemDiskManager::AllocatePage() {
  ANNLIB_TRACE_SPAN("io", "alloc");
  auto page = std::make_unique<Page>();
  page->bytes.fill(std::byte{0});
  MutexLock lock(&mu_);
  if (pages_.size() >= kInvalidPageId) {
    return Status::OutOfRange("MemDiskManager: page id space exhausted");
  }
  pages_.push_back(std::move(page));
  obs_allocs_->Increment();
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemDiskManager::ReadPage(PageId id, Page* out) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "read");
  span.AddArg("page", id);
  // The lock covers only the vector indexing; the 8 KiB copy runs outside
  // it against the stable heap block (the pin discipline keeps writers
  // away from pages being read).
  const Page* src;
  {
    MutexLock lock(&mu_);
    if (id >= pages_.size()) {
      return Status::OutOfRange("MemDiskManager: read of unallocated page");
    }
    src = pages_[id].get();
  }
  *out = *src;
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  obs_reads_->Increment();
  return Status::OK();
}

Status MemDiskManager::WritePage(PageId id, const Page& page) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "write");
  span.AddArg("page", id);
  Page* dst;
  {
    MutexLock lock(&mu_);
    if (id >= pages_.size()) {
      return Status::OutOfRange("MemDiskManager: write of unallocated page");
    }
    dst = pages_[id].get();
  }
  *dst = page;
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  obs_writes_->Increment();
  return Status::OK();
}

uint64_t MemDiskManager::page_count() const {
  MutexLock lock(&mu_);
  return pages_.size();
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(fd, path));
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::IOError("open(" + path +
                           "): size is not a whole number of pages");
  }
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager(fd, path));
  dm->page_count_ = static_cast<uint64_t>(size) / kPageSize;
  return dm;
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FileDiskManager::AllocatePage() {
  // Span constructed before the latch, so its destructor runs after the
  // latch releases — strict LIFO with the alloc latch either way, and the
  // span covers the zero-fill write.
  ANNLIB_TRACE_SPAN("io", "alloc");
  MutexLock lock(&alloc_mu_);
  if (page_count_ >= kInvalidPageId) {
    return Status::OutOfRange("FileDiskManager: page id space exhausted");
  }
  Page zero;
  zero.bytes.fill(std::byte{0});
  const PageId id = static_cast<PageId>(page_count_);
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  if (::pwrite(fd_, zero.data(), kPageSize, offset) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  ++page_count_;
  obs_allocs_->Increment();
  return id;
}

Status FileDiskManager::ReadPage(PageId id, Page* out) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "read");
  span.AddArg("page", id);
  if (id >= page_count_) {
    return Status::OutOfRange("FileDiskManager: read of unallocated page");
  }
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  if (::pread(fd_, out->data(), kPageSize, offset) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
  }
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  obs_reads_->Increment();
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const Page& page) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "write");
  span.AddArg("page", id);
  if (id >= page_count_) {
    return Status::OutOfRange("FileDiskManager: write of unallocated page");
  }
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  if (::pwrite(fd_, page.data(), kPageSize, offset) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  obs_writes_->Increment();
  return Status::OK();
}

}  // namespace ann
