#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"

namespace ann {

namespace {

/// Formats a short-transfer IOError: a partial pread/pwrite is a distinct
/// failure from an errno error (the file is shorter than the page table
/// says — truncated behind the manager's back, or a disk-full partial
/// write), so the message says which page and how many bytes moved.
Status ShortTransferError(const char* op, const std::string& path, PageId id,
                          ssize_t got) {
  return Status::IOError(std::string(op) + "(" + path + "): short transfer on page " +
                         std::to_string(id) + ": " + std::to_string(got) +
                         " of " + std::to_string(kPageSize) +
                         " bytes (file truncated or device full?)");
}

}  // namespace

Result<PageId> MemDiskManager::AllocatePage() {
  ANNLIB_TRACE_SPAN("io", "alloc");
  auto page = std::make_unique<Page>();
  page->bytes.fill(std::byte{0});
  MutexLock lock(&mu_);
  if (pages_.size() >= kInvalidPageId) {
    return Status::OutOfRange("MemDiskManager: page id space exhausted");
  }
  pages_.push_back(std::move(page));
  obs_allocs_->Increment();
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemDiskManager::ReadPage(PageId id, Page* out) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "read");
  span.AddArg("page", id);
  // The lock covers only the vector indexing; the 8 KiB copy runs outside
  // it against the stable heap block (the pin discipline keeps writers
  // away from pages being read).
  const Page* src;
  {
    MutexLock lock(&mu_);
    if (id >= pages_.size()) {
      return Status::OutOfRange("MemDiskManager: read of unallocated page");
    }
    src = pages_[id].get();
  }
  *out = *src;
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  obs_reads_->Increment();
  return Status::OK();
}

Status MemDiskManager::WritePage(PageId id, const Page& page) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "write");
  span.AddArg("page", id);
  Page* dst;
  {
    MutexLock lock(&mu_);
    if (id >= pages_.size()) {
      return Status::OutOfRange("MemDiskManager: write of unallocated page");
    }
    dst = pages_[id].get();
  }
  *dst = page;
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  obs_writes_->Increment();
  return Status::OK();
}

uint64_t MemDiskManager::page_count() const {
  MutexLock lock(&mu_);
  return pages_.size();
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(fd, path));
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::IOError("open(" + path +
                           "): size is not a whole number of pages");
  }
  auto dm = std::unique_ptr<FileDiskManager>(new FileDiskManager(fd, path));
  dm->page_count_ = static_cast<uint64_t>(size) / kPageSize;
  return dm;
}

FileDiskManager::~FileDiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FileDiskManager::AllocatePage() {
  // Span constructed before the latch, so its destructor runs after the
  // latch releases — strict LIFO with the alloc latch either way, and the
  // span covers the zero-fill write.
  ANNLIB_TRACE_SPAN("io", "alloc");
  MutexLock lock(&alloc_mu_);
  if (page_count_ >= kInvalidPageId) {
    return Status::OutOfRange("FileDiskManager: page id space exhausted");
  }
  Page zero;
  zero.bytes.fill(std::byte{0});
  const PageId id = static_cast<PageId>(page_count_);
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  if (::pwrite(fd_, zero.data(), kPageSize, offset) !=
      static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  ++page_count_;
  obs_allocs_->Increment();
  return id;
}

Status FileDiskManager::ReadPage(PageId id, Page* out) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "read");
  span.AddArg("page", id);
  if (id >= page_count_) {
    return Status::OutOfRange("FileDiskManager: read of unallocated page");
  }
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  const ssize_t got = ::pread(fd_, out->data(), kPageSize, offset);
  if (got < 0) {
    return Status::IOError("pread(" + path_ + "): " + std::strerror(errno));
  }
  if (got != static_cast<ssize_t>(kPageSize)) {
    return ShortTransferError("pread", path_, id, got);
  }
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  obs_reads_->Increment();
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const Page& page) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "write");
  span.AddArg("page", id);
  if (id >= page_count_) {
    return Status::OutOfRange("FileDiskManager: write of unallocated page");
  }
  const off_t offset = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  const ssize_t put = ::pwrite(fd_, page.data(), kPageSize, offset);
  if (put < 0) {
    return Status::IOError("pwrite(" + path_ + "): " + std::strerror(errno));
  }
  if (put != static_cast<ssize_t>(kPageSize)) {
    return ShortTransferError("pwrite", path_, id, put);
  }
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  obs_writes_->Increment();
  return Status::OK();
}

MmapDiskManager::MmapDiskManager(int fd, std::string path, Options options)
    : fd_(fd),
      path_(std::move(path)),
      segment_pages_(options.segment_pages),
      segment_bytes_(static_cast<size_t>(options.segment_pages) * kPageSize),
      segments_(new std::atomic<char*>[kMaxSegments]) {
  for (uint64_t s = 0; s < kMaxSegments; ++s) {
    segments_[s].store(nullptr, std::memory_order_relaxed);
  }
}

Result<std::unique_ptr<MmapDiskManager>> MmapDiskManager::Create(
    const std::string& path, Options options) {
  if (options.segment_pages == 0) {
    return Status::InvalidArgument("MmapDiskManager: segment_pages must be > 0");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<MmapDiskManager>(
      new MmapDiskManager(fd, path, options));
}

Result<std::unique_ptr<MmapDiskManager>> MmapDiskManager::Open(
    const std::string& path, Options options) {
  if (options.segment_pages == 0) {
    return Status::InvalidArgument("MmapDiskManager: segment_pages must be > 0");
  }
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::IOError("open(" + path +
                           "): size is not a whole number of pages "
                           "(truncated mid-page?)");
  }
  auto dm = std::unique_ptr<MmapDiskManager>(
      new MmapDiskManager(fd, path, options));
  const uint64_t pages = static_cast<uint64_t>(size) / kPageSize;
  const uint64_t segments =
      (pages + dm->segment_pages_ - 1) / dm->segment_pages_;
  {
    MutexLock lock(&dm->alloc_mu_);
    for (uint64_t s = 0; s < segments; ++s) {
      ANN_RETURN_NOT_OK(dm->GrowLocked(s));
    }
  }
  dm->page_count_.store(pages, std::memory_order_release);
  return dm;
}

MmapDiskManager::~MmapDiskManager() {
  if (fd_ < 0) return;
  for (uint64_t s = 0; s < kMaxSegments; ++s) {
    char* const map = segments_[s].load(std::memory_order_relaxed);
    if (map == nullptr) break;  // segments map densely from 0
    ::munmap(map, segment_bytes_);
  }
  // Trim the segment-boundary padding back to exactly the allocated pages
  // so the file reopens identically under either backend. Best effort: a
  // failed trim leaves trailing zero pages, which Open would then count.
  const off_t exact = static_cast<off_t>(
      page_count_.load(std::memory_order_relaxed) * kPageSize);
  if (::ftruncate(fd_, exact) != 0) {
    // Destructors cannot report; the padding is zero pages, not corruption.
  }
  ::close(fd_);
}

Status MmapDiskManager::GrowLocked(uint64_t seg) {
  if (seg >= kMaxSegments) {
    return Status::OutOfRange("MmapDiskManager: segment table exhausted");
  }
  const Failpoint fp = failpoint_.exchange(Failpoint::kNone,
                                           std::memory_order_relaxed);
  const off_t new_size =
      static_cast<off_t>((seg + 1) * static_cast<uint64_t>(segment_bytes_));
  // Extend-only: Open maps the segments an existing file already covers,
  // and truncating down to the segment boundary there would zero the tail
  // of the file it is trying to read.
  const off_t cur_size = ::lseek(fd_, 0, SEEK_END);
  if (fp != Failpoint::kFtruncate && cur_size >= new_size) {
    // Already long enough; nothing to do before mapping.
  } else if (fp == Failpoint::kFtruncate || ::ftruncate(fd_, new_size) != 0) {
    return Status::IOError(
        "ftruncate(" + path_ + ") to " + std::to_string(new_size) +
        " bytes failed growing segment " + std::to_string(seg) + ": " +
        (fp == Failpoint::kFtruncate ? "injected failure"
                                     : std::strerror(errno)));
  }
  void* map = fp == Failpoint::kMmap
                  ? MAP_FAILED
                  : ::mmap(nullptr, segment_bytes_, PROT_READ | PROT_WRITE,
                           MAP_SHARED, fd_,
                           static_cast<off_t>(seg * segment_bytes_));
  if (map == MAP_FAILED) {
    return Status::IOError(
        "mmap(" + path_ + ") of segment " + std::to_string(seg) + " failed: " +
        (fp == Failpoint::kMmap ? "injected failure" : std::strerror(errno)));
  }
  // Advisory only: a traversal faults pages in near-random order, so
  // kernel readahead would just pollute the page cache.
  (void)::madvise(map, segment_bytes_, MADV_RANDOM);
  segments_[seg].store(static_cast<char*>(map), std::memory_order_release);
  mapped_segments_ = seg + 1;
  return Status::OK();
}

Result<PageId> MmapDiskManager::AllocatePage() {
  ANNLIB_TRACE_SPAN("io", "alloc");
  MutexLock lock(&alloc_mu_);
  const uint64_t count = page_count_.load(std::memory_order_relaxed);
  if (count >= kInvalidPageId) {
    return Status::OutOfRange("MmapDiskManager: page id space exhausted");
  }
  const uint64_t needed = count / segment_pages_ + 1;
  while (mapped_segments_ < needed) {
    ANN_RETURN_NOT_OK(GrowLocked(mapped_segments_));
  }
  // ftruncate extended the file with zeros, so the fresh page needs no
  // wipe. Release-publish after the segment store above so readers that
  // pass the bounds check always find their segment mapped.
  page_count_.store(count + 1, std::memory_order_release);
  obs_allocs_->Increment();
  return static_cast<PageId>(count);
}

Status MmapDiskManager::ReadPage(PageId id, Page* out) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "read");
  span.AddArg("page", id);
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("MmapDiskManager: read of unallocated page");
  }
  const char* const seg =
      segments_[id / segment_pages_].load(std::memory_order_acquire);
  std::memcpy(out->data(), seg + (id % segment_pages_) * kPageSize, kPageSize);
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  obs_reads_->Increment();
  return Status::OK();
}

Status MmapDiskManager::WritePage(PageId id, const Page& page) {
  ANNLIB_TRACE_SPAN_NAMED(span, "io", "write");
  span.AddArg("page", id);
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("MmapDiskManager: write of unallocated page");
  }
  char* const seg =
      segments_[id / segment_pages_].load(std::memory_order_acquire);
  std::memcpy(seg + (id % segment_pages_) * kPageSize, page.data(), kPageSize);
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  obs_writes_->Increment();
  return Status::OK();
}

Result<StorageBackend> ParseStorageBackend(const std::string& name) {
  if (name == "pread") return StorageBackend::kPread;
  if (name == "mmap") return StorageBackend::kMmap;
  return Status::InvalidArgument("unknown storage backend '" + name +
                                 "' (expected pread or mmap)");
}

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kPread:
      return "pread";
    case StorageBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

Result<std::unique_ptr<DiskManager>> CreateFileBackedDiskManager(
    StorageBackend backend, const std::string& path) {
  switch (backend) {
    case StorageBackend::kPread: {
      ANN_ASSIGN_OR_RETURN(std::unique_ptr<FileDiskManager> dm,
                           FileDiskManager::Create(path));
      return std::unique_ptr<DiskManager>(std::move(dm));
    }
    case StorageBackend::kMmap: {
      ANN_ASSIGN_OR_RETURN(std::unique_ptr<MmapDiskManager> dm,
                           MmapDiskManager::Create(path));
      return std::unique_ptr<DiskManager>(std::move(dm));
    }
  }
  return Status::InvalidArgument("unknown storage backend");
}

}  // namespace ann
