#ifndef ANNLIB_STORAGE_DISK_MANAGER_H_
#define ANNLIB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/obs.h"
#include "storage/page.h"

namespace ann {

/// \brief Abstraction of the physical page store beneath the buffer pool.
///
/// Two implementations are provided: MemDiskManager keeps pages in memory
/// and only counts I/O (deterministic, used by benchmarks so simulated I/O
/// cost is independent of host filesystem behaviour), and FileDiskManager
/// does real pread/pwrite against a file.
///
/// Thread-safety contract: ReadPage/WritePage/AllocatePage may be called
/// concurrently (the striped buffer pool does) as long as no two callers
/// touch the same page id with at least one writer — the buffer pool's
/// pin discipline guarantees that. I/O counters are atomic.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into `*out`. Counts one physical read.
  virtual Status ReadPage(PageId id, Page* out) = 0;

  /// Writes `page` at `id`. Counts one physical write.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Number of pages allocated so far.
  virtual uint64_t page_count() const = 0;

  IoStats stats() const { return stats_.Load(); }
  void ResetStats() { stats_.Reset(); }

 protected:
  AtomicIoStats stats_;

  // Global-registry mirrors shared by all implementations (handles
  // resolved once per manager).
  obs::Counter* obs_reads_ = obs::GetCounter("storage.disk.reads");
  obs::Counter* obs_writes_ = obs::GetCounter("storage.disk.writes");
  obs::Counter* obs_allocs_ = obs::GetCounter("storage.disk.allocs");
};

/// In-memory page store with I/O accounting.
class MemDiskManager final : public DiskManager {
 public:
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t page_count() const override;

 private:
  // Guards the pages_ vector itself (AllocatePage may reallocate it while
  // readers index into it); page payloads are stable heap blocks copied
  // outside the lock. Ranks after the buffer-pool stripe latch: Fetch
  // reads pages from disk while holding its stripe.
  mutable Mutex mu_{"memdisk.pages", kMutexRankDiskManager};
  std::vector<std::unique_ptr<Page>> pages_ ANNLIB_GUARDED_BY(mu_);
};

/// File-backed page store (pread/pwrite on a regular file).
class FileDiskManager final : public DiskManager {
 public:
  /// Opens (creating or truncating) `path` for page storage.
  static Result<std::unique_ptr<FileDiskManager>> Create(
      const std::string& path);

  /// Opens an existing page file; the page count is derived from the file
  /// size (which must be a whole number of pages).
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  /// Takes alloc_mu_ internally: callers must not hold it (self-deadlock).
  Result<PageId> AllocatePage() override ANNLIB_EXCLUDES(alloc_mu_);
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t page_count() const override {
    return page_count_.load(std::memory_order_relaxed);
  }

 private:
  FileDiskManager(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  // Serializes the grow-file-then-bump sequence. Same rank as the
  // MemDiskManager latch: both nest only under a buffer-pool stripe.
  Mutex alloc_mu_{"filedisk.alloc", kMutexRankDiskManager};
  // Atomic so concurrent readers can bounds-check against an in-progress
  // allocation without taking alloc_mu_.
  std::atomic<uint64_t> page_count_{0};
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_DISK_MANAGER_H_
