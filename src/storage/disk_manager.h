#ifndef ANNLIB_STORAGE_DISK_MANAGER_H_
#define ANNLIB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/obs.h"
#include "storage/page.h"

namespace ann {

/// \brief Abstraction of the physical page store beneath the buffer pool.
///
/// Two implementations are provided: MemDiskManager keeps pages in memory
/// and only counts I/O (deterministic, used by benchmarks so simulated I/O
/// cost is independent of host filesystem behaviour), and FileDiskManager
/// does real pread/pwrite against a file.
///
/// Thread-safety contract: ReadPage/WritePage/AllocatePage may be called
/// concurrently (the striped buffer pool does) as long as no two callers
/// touch the same page id with at least one writer — the buffer pool's
/// pin discipline guarantees that. I/O counters are atomic.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into `*out`. Counts one physical read.
  virtual Status ReadPage(PageId id, Page* out) = 0;

  /// Writes `page` at `id`. Counts one physical write.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Number of pages allocated so far.
  virtual uint64_t page_count() const = 0;

  IoStats stats() const { return stats_.Load(); }
  void ResetStats() { stats_.Reset(); }

 protected:
  AtomicIoStats stats_;

  // Global-registry mirrors shared by all implementations (handles
  // resolved once per manager).
  obs::Counter* obs_reads_ = obs::GetCounter("storage.disk.reads");
  obs::Counter* obs_writes_ = obs::GetCounter("storage.disk.writes");
  obs::Counter* obs_allocs_ = obs::GetCounter("storage.disk.allocs");
};

/// In-memory page store with I/O accounting.
class MemDiskManager final : public DiskManager {
 public:
  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t page_count() const override;

 private:
  // Guards the pages_ vector itself (AllocatePage may reallocate it while
  // readers index into it); page payloads are stable heap blocks copied
  // outside the lock. Ranks after the buffer-pool stripe latch: Fetch
  // reads pages from disk while holding its stripe.
  mutable Mutex mu_{"memdisk.pages", kMutexRankDiskManager};
  std::vector<std::unique_ptr<Page>> pages_ ANNLIB_GUARDED_BY(mu_);
};

/// Which file-backed page-store implementation to use. kPread is the
/// classic read-into-buffer FileDiskManager; kMmap maps the file and
/// serves pages by memcpy from the mapping (the kernel's page cache
/// becomes the first-level cache, with MADV_RANDOM hinting the access
/// pattern of an index traversal).
enum class StorageBackend { kPread, kMmap };

/// Parses "pread" / "mmap" (the ann_tool --storage= spellings).
Result<StorageBackend> ParseStorageBackend(const std::string& name);

/// Canonical spelling for a backend (inverse of ParseStorageBackend).
const char* StorageBackendName(StorageBackend backend);

/// Creates (truncating) a file-backed disk manager of the given flavor.
Result<std::unique_ptr<DiskManager>> CreateFileBackedDiskManager(
    StorageBackend backend, const std::string& path);

/// File-backed page store (pread/pwrite on a regular file).
class FileDiskManager final : public DiskManager {
 public:
  /// Opens (creating or truncating) `path` for page storage.
  static Result<std::unique_ptr<FileDiskManager>> Create(
      const std::string& path);

  /// Opens an existing page file; the page count is derived from the file
  /// size (which must be a whole number of pages).
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  ~FileDiskManager() override;

  FileDiskManager(const FileDiskManager&) = delete;
  FileDiskManager& operator=(const FileDiskManager&) = delete;

  /// Takes alloc_mu_ internally: callers must not hold it (self-deadlock).
  Result<PageId> AllocatePage() override ANNLIB_EXCLUDES(alloc_mu_);
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t page_count() const override {
    return page_count_.load(std::memory_order_relaxed);
  }

 private:
  FileDiskManager(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  // Serializes the grow-file-then-bump sequence. Same rank as the
  // MemDiskManager latch: both nest only under a buffer-pool stripe.
  Mutex alloc_mu_{"filedisk.alloc", kMutexRankDiskManager};
  // Atomic so concurrent readers can bounds-check against an in-progress
  // allocation without taking alloc_mu_.
  std::atomic<uint64_t> page_count_{0};
};

/// \brief mmap-backed page store: pages are served by memcpy from a
/// page-aligned shared mapping of the backing file.
///
/// The file is mapped in fixed-size *segments* (Options::segment_pages
/// pages each). Growth never remaps: AllocatePage extends the file to the
/// next segment boundary with ftruncate and maps the NEW segment at a
/// fresh address, so every previously returned mapping stays valid for
/// the manager's lifetime and readers resolve page addresses lock-free
/// (an atomic segment-pointer table published with release/acquire
/// ordering against the page count). Each segment gets
/// madvise(MADV_RANDOM): index traversals fault pages in essentially
/// random order, so kernel readahead would only pollute the page cache.
///
/// ftruncate zero-fills, so freshly allocated pages read as zero without
/// an explicit wipe (the pwrite the pread backend needs). On close the
/// file is trimmed back from the segment boundary to exactly
/// page_count() pages, so a file created by either backend reopens under
/// the other.
class MmapDiskManager final : public DiskManager {
 public:
  struct Options {
    /// Pages per mapped segment. Growth maps whole segments so existing
    /// mappings never move; tests shrink this to make growth (and its
    /// failure paths) cheap to exercise.
    uint64_t segment_pages = 2048;  // 16 MiB per segment
  };

  /// Test-only growth failure injection (see SetFailpointForTest).
  enum class Failpoint { kNone, kFtruncate, kMmap };

  /// Opens (creating or truncating) `path` for page storage.
  static Result<std::unique_ptr<MmapDiskManager>> Create(
      const std::string& path, Options options);
  static Result<std::unique_ptr<MmapDiskManager>> Create(
      const std::string& path) {
    return Create(path, Options{});
  }

  /// Opens an existing page file; the page count is derived from the file
  /// size (which must be a whole number of pages).
  static Result<std::unique_ptr<MmapDiskManager>> Open(
      const std::string& path, Options options);
  static Result<std::unique_ptr<MmapDiskManager>> Open(
      const std::string& path) {
    return Open(path, Options{});
  }

  ~MmapDiskManager() override;

  MmapDiskManager(const MmapDiskManager&) = delete;
  MmapDiskManager& operator=(const MmapDiskManager&) = delete;

  /// Takes alloc_mu_ internally: callers must not hold it (self-deadlock).
  Result<PageId> AllocatePage() override ANNLIB_EXCLUDES(alloc_mu_);
  Status ReadPage(PageId id, Page* out) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t page_count() const override {
    return page_count_.load(std::memory_order_acquire);
  }

  /// Forces the next segment growth to fail at the named syscall with a
  /// precise Status — the error paths are otherwise unreachable without
  /// filling the disk. Test-only; resets to kNone after firing.
  void SetFailpointForTest(Failpoint fp) {
    failpoint_.store(fp, std::memory_order_relaxed);
  }

 private:
  MmapDiskManager(int fd, std::string path, Options options);

  /// Extends the file to cover segment `seg` and maps it. On failure the
  /// segment table is untouched (the file may have grown; the close-time
  /// trim reclaims it).
  Status GrowLocked(uint64_t seg) ANNLIB_REQUIRES(alloc_mu_);

  // Upper bound on mapped segments (table is preallocated so the atomic
  // slots never move). 65536 segments at the default segment size is
  // 1 TiB of addressable pages.
  static constexpr uint64_t kMaxSegments = 1u << 16;

  int fd_ = -1;
  std::string path_;
  const uint64_t segment_pages_;
  const size_t segment_bytes_;
  // Slot `s` holds the mapping of file range [s*segment_bytes_,
  // (s+1)*segment_bytes_), published with release ordering before
  // page_count_ admits any page inside it.
  std::unique_ptr<std::atomic<char*>[]> segments_;
  // Serializes the grow-then-publish sequence. Same rank as the other
  // disk-manager latches: nests only under a buffer-pool stripe.
  Mutex alloc_mu_{"mmapdisk.alloc", kMutexRankDiskManager};
  uint64_t mapped_segments_ ANNLIB_GUARDED_BY(alloc_mu_) = 0;
  // Acquire/release pairs with the segment-pointer stores so a reader
  // that passes the bounds check always sees its segment mapped.
  std::atomic<uint64_t> page_count_{0};
  std::atomic<Failpoint> failpoint_{Failpoint::kNone};
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_DISK_MANAGER_H_
