#include "storage/node_store.h"

#include <algorithm>
#include <cstring>

namespace ann {

namespace {

// Slotted-page geometry.
constexpr size_t kPageHeaderSize = 4;  // u16 slot_count, u16 free_ptr
constexpr size_t kSlotSize = 4;        // u16 offset, u16 length
constexpr uint16_t kDeadOffset = 0xFFFF;
// Every inline payload region is at least this large, so any record can
// later be converted in place into an overflow stub.
constexpr size_t kMinPayload = 8;

uint16_t ReadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void WriteU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void WriteU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

NodeId MakeNodeId(PageId page, uint16_t slot) {
  return (page << 12) | slot;
}
PageId NodePage(NodeId id) { return id >> 12; }
uint16_t NodeSlot(NodeId id) { return id & 0xFFF; }

size_t PayloadReserve(size_t len) { return std::max(len, kMinPayload); }

}  // namespace

Result<PinnedPage> NodeStore::FetchMut(PageId id) {
  if (pool_->write_batch_open()) return pool_->FetchForWrite(id);
  return pool_->Fetch(id);
}

Result<PageId> NodeStore::AllocatePage() {
  if (!free_pages_.empty()) {
    const PageId id = free_pages_.back();
    free_pages_.pop_back();
    // Re-zero the header so the page reads as empty.
    ANN_ASSIGN_OR_RETURN(PinnedPage page, FetchMut(id));
    std::memset(page.data(), 0, kPageHeaderSize);
    page.MarkDirty();
    return id;
  }
  ANN_ASSIGN_OR_RETURN(PinnedPage page, pool_->NewPage());
  return page.page_id();
}

Result<PageId> NodeStore::WriteChain(const char* data, size_t size) {
  // Build the chain back to front so each page's next pointer is known
  // when it is written.
  const size_t pages = (size + kOverflowPayload - 1) / kOverflowPayload;
  PageId next = kInvalidPageId;
  for (size_t i = pages; i-- > 0;) {
    const size_t begin = i * kOverflowPayload;
    const size_t chunk = std::min(kOverflowPayload, size - begin);
    ANN_ASSIGN_OR_RETURN(const PageId pid, AllocatePage());
    ANN_ASSIGN_OR_RETURN(PinnedPage page, FetchMut(pid));
    WriteU32(page.data(), next);
    std::memcpy(page.data() + 4, data + begin, chunk);
    page.MarkDirty();
    next = pid;
  }
  return next;  // first page of the chain (kInvalidPageId for size 0)
}

Status NodeStore::FreeChain(PageId first) {
  PageId current = first;
  while (current != kInvalidPageId) {
    ANN_ASSIGN_OR_RETURN(PinnedPage page, pool_->Fetch(current));
    const PageId next = ReadU32(page.data());
    page.Release();
    free_pages_.push_back(current);
    current = next;
  }
  return Status::OK();
}

Result<NodeId> NodeStore::Append(const char* data, size_t size) {
  const bool overflow = size > kMaxInline;
  const size_t payload = overflow ? kMinPayload : PayloadReserve(size);

  // Find (or start) a fill page with room for slot + payload. The peek
  // is a read fetch (the batch owner sees its own clones), so a full
  // fill page is not needlessly COW-cloned just to be rejected.
  if (fill_page_ != kInvalidPageId) {
    ANN_ASSIGN_OR_RETURN(PinnedPage peek, pool_->Fetch(fill_page_));
    const uint16_t slot_count = ReadU16(peek.data());
    const uint16_t free_ptr = ReadU16(peek.data() + 2);
    const size_t slots_end = kPageHeaderSize + (slot_count + 1) * kSlotSize;
    if (slot_count >= 0xFFF || slots_end + payload > free_ptr) {
      fill_page_ = kInvalidPageId;
    }
  }
  PinnedPage page;
  if (fill_page_ == kInvalidPageId) {
    ANN_ASSIGN_OR_RETURN(const PageId pid, AllocatePage());
    ANN_ASSIGN_OR_RETURN(page, FetchMut(pid));
    WriteU16(page.data(), 0);
    WriteU16(page.data() + 2, static_cast<uint16_t>(kPageSize));
    fill_page_ = pid;
  } else {
    ANN_ASSIGN_OR_RETURN(page, FetchMut(fill_page_));
  }

  uint16_t slot_count = ReadU16(page.data());
  uint16_t free_ptr = ReadU16(page.data() + 2);
  free_ptr = static_cast<uint16_t>(free_ptr - payload);

  char* slot = page.data() + kPageHeaderSize + slot_count * kSlotSize;
  WriteU16(slot, free_ptr);
  if (overflow) {
    ANN_ASSIGN_OR_RETURN(const PageId chain, WriteChain(data, size));
    WriteU16(slot + 2, kOverflowFlag);
    WriteU32(page.data() + free_ptr, static_cast<uint32_t>(size));
    WriteU32(page.data() + free_ptr + 4, chain);
  } else {
    WriteU16(slot + 2, static_cast<uint16_t>(size));
    // Zero-length appends carry a null `data`; memcpy forbids null even
    // for a zero count.
    if (size != 0) std::memcpy(page.data() + free_ptr, data, size);
  }
  WriteU16(page.data(), static_cast<uint16_t>(slot_count + 1));
  WriteU16(page.data() + 2, free_ptr);
  page.MarkDirty();
  ++record_count_;
  return MakeNodeId(page.page_id(), slot_count);
}

Status NodeStore::Read(NodeId id, std::vector<char>* out,
                       const PageSnapshot* snap) const {
  ANN_ASSIGN_OR_RETURN(
      PinnedPage page, snap != nullptr ? pool_->Fetch(NodePage(id), *snap)
                                       : pool_->Fetch(NodePage(id)));
  const uint16_t slot_count = ReadU16(page.data());
  const uint16_t slot_index = NodeSlot(id);
  if (slot_index >= slot_count) {
    return Status::NotFound("NodeStore: no such slot");
  }
  const char* slot = page.data() + kPageHeaderSize + slot_index * kSlotSize;
  const uint16_t offset = ReadU16(slot);
  const uint16_t length = ReadU16(slot + 2);
  if (offset == kDeadOffset) {
    return Status::NotFound("NodeStore: record was freed");
  }
  if (!(length & kOverflowFlag)) {
    out->resize(length);
    // An empty vector's data() may be null; memcpy forbids null args.
    if (length != 0) std::memcpy(out->data(), page.data() + offset, length);
    return Status::OK();
  }
  const uint32_t total = ReadU32(page.data() + offset);
  PageId current = ReadU32(page.data() + offset + 4);
  page.Release();
  out->resize(total);
  size_t pos = 0;
  while (pos < total) {
    if (current == kInvalidPageId) {
      return Status::Internal("NodeStore: truncated overflow chain");
    }
    ANN_ASSIGN_OR_RETURN(
        PinnedPage chain_page, snap != nullptr
                                   ? pool_->Fetch(current, *snap)
                                   : pool_->Fetch(current));
    const size_t chunk = std::min(kOverflowPayload, total - pos);
    std::memcpy(out->data() + pos, chain_page.data() + 4, chunk);
    current = ReadU32(chain_page.data());
    pos += chunk;
  }
  return Status::OK();
}

Status NodeStore::Update(NodeId id, const char* data, size_t size) {
  ANN_ASSIGN_OR_RETURN(PinnedPage page, FetchMut(NodePage(id)));
  const uint16_t slot_count = ReadU16(page.data());
  const uint16_t slot_index = NodeSlot(id);
  if (slot_index >= slot_count) {
    return Status::NotFound("NodeStore: no such slot");
  }
  char* slot = page.data() + kPageHeaderSize + slot_index * kSlotSize;
  const uint16_t offset = ReadU16(slot);
  const uint16_t length = ReadU16(slot + 2);
  if (offset == kDeadOffset) {
    return Status::NotFound("NodeStore: record was freed");
  }

  const bool was_overflow = (length & kOverflowFlag) != 0;
  const size_t capacity =
      was_overflow ? kMinPayload : PayloadReserve(length & ~kOverflowFlag);

  if (was_overflow) {
    const PageId old_chain = ReadU32(page.data() + offset + 4);
    ANN_RETURN_NOT_OK(FreeChain(old_chain));
  }

  if (!was_overflow && size <= capacity) {
    // In-place inline rewrite (null `data` legal when size == 0).
    if (size != 0) std::memcpy(page.data() + offset, data, size);
    WriteU16(slot + 2, static_cast<uint16_t>(size));
    page.MarkDirty();
    return Status::OK();
  }

  // The record becomes (or stays) an overflow chain; the 8-byte stub fits
  // every payload region by construction.
  ANN_ASSIGN_OR_RETURN(const PageId chain, WriteChain(data, size));
  WriteU16(slot + 2, kOverflowFlag);
  WriteU32(page.data() + offset, static_cast<uint32_t>(size));
  WriteU32(page.data() + offset + 4, chain);
  page.MarkDirty();
  return Status::OK();
}

Status NodeStore::Free(NodeId id) {
  ANN_ASSIGN_OR_RETURN(PinnedPage page, FetchMut(NodePage(id)));
  const uint16_t slot_count = ReadU16(page.data());
  const uint16_t slot_index = NodeSlot(id);
  if (slot_index >= slot_count) {
    return Status::NotFound("NodeStore: no such slot");
  }
  char* slot = page.data() + kPageHeaderSize + slot_index * kSlotSize;
  const uint16_t offset = ReadU16(slot);
  const uint16_t length = ReadU16(slot + 2);
  if (offset == kDeadOffset) {
    return Status::NotFound("NodeStore: record already freed");
  }
  if (length & kOverflowFlag) {
    ANN_RETURN_NOT_OK(FreeChain(ReadU32(page.data() + offset + 4)));
  }
  WriteU16(slot, kDeadOffset);
  WriteU16(slot + 2, 0);
  page.MarkDirty();
  --record_count_;
  return Status::OK();
}

}  // namespace ann
