#ifndef ANNLIB_STORAGE_NODE_STORE_H_
#define ANNLIB_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace ann {

/// Identifier of a variable-length record in a NodeStore. Encodes the
/// slotted page that holds the record's slot (upper 20 bits) and the slot
/// index within it (lower 12 bits), so a store addresses up to 2^20 pages
/// (8 GiB) — far beyond paper-scale indexes.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

/// \brief Variable-length record storage over slotted pages (SHORE-style).
///
/// Index nodes are serialized byte strings, usually much smaller than a
/// page; a disk-resident index must pack several per page or waste an
/// order of magnitude of I/O. Each page carries a slot directory growing
/// from the front while record payloads grow from the back:
///
///   page: [u16 slot_count][u16 free_ptr]
///         [slot 0][slot 1]...        -> each slot: u16 offset, u16 length
///         ...free space...
///         [payloads packed at the back]
///
/// Records larger than a page payload go to an overflow chain of dedicated
/// pages ([u32 next][payload...] each); the owning slot then stores a
/// 12-byte stub {kOverflowMarker, total_len, first_page}. Reading a k-page
/// record costs k+1 page accesses through the buffer pool.
///
/// Append clusters consecutive records onto the same fill page, so a tree
/// persisted in one pass gets sibling nodes co-located — the layout a real
/// storage manager produces for a bulk-built index.
///
/// **Versioned stores.** When the owning pool has a write batch open (see
/// BufferPool::BeginWriteBatch), every mutation routes its page writes
/// through FetchForWrite, so the whole Append/Update/Free sequence is
/// copy-on-write: invisible to concurrent snapshot readers until the pool
/// commits. Read() takes an optional PageSnapshot and then resolves every
/// page of the record — slotted page and overflow chain alike — at that
/// snapshot's epoch. The NodeStore's own bookkeeping (fill page, free
/// list, record count) is single-writer state owned by whoever drives the
/// batch; a failed mid-batch mutation leaves it out of sync with an
/// aborted pool batch, which is why DynamicIndex treats persist errors as
/// poisoning (see dynamic_index.h).
class NodeStore {
 public:
  explicit NodeStore(BufferPool* pool) : pool_(pool) {}

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  /// Appends a new record; returns its NodeId.
  Result<NodeId> Append(const char* data, size_t size);

  /// Reads record `id` into `*out` (resized to the record length). With a
  /// valid `snap`, reads the record as of that snapshot's epoch.
  Status Read(NodeId id, std::vector<char>* out,
              const PageSnapshot* snap = nullptr) const;

  /// Overwrites record `id` with new contents (possibly a different
  /// size). In-place when the new payload fits the slot's current
  /// capacity; otherwise the record moves to an overflow chain (the
  /// NodeId is stable either way).
  Status Update(NodeId id, const char* data, size_t size);

  /// Marks the record's slot dead and releases any overflow pages.
  Status Free(NodeId id);

  BufferPool* pool() const { return pool_; }
  size_t free_pages() const { return free_pages_.size(); }
  uint64_t record_count() const { return record_count_; }

  /// Largest payload stored inline in a slotted page.
  static constexpr size_t kMaxInline = kPageSize - 4 - 4;  // header + 1 slot
  /// Payload bytes per overflow-chain page.
  static constexpr size_t kOverflowPayload = kPageSize - 4;

 private:
  static constexpr uint16_t kOverflowFlag = 0x8000;  // set in slot length

  /// Pins a page for mutation: FetchForWrite when the pool has a write
  /// batch open (COW), plain Fetch otherwise (direct writes, as during an
  /// initial bulk persist with no readers).
  Result<PinnedPage> FetchMut(PageId id);

  Result<PageId> AllocatePage();
  Status FreeChain(PageId first);
  Result<PageId> WriteChain(const char* data, size_t size);

  BufferPool* pool_;
  std::vector<PageId> free_pages_;
  PageId fill_page_ = kInvalidPageId;  // current append target
  uint64_t record_count_ = 0;
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_NODE_STORE_H_
