#ifndef ANNLIB_STORAGE_PAGE_H_
#define ANNLIB_STORAGE_PAGE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ann {

/// Page size used throughout the storage layer. The paper compiles SHORE
/// with 8 KB pages (Section 4.1); every disk-resident structure here is
/// built from pages of this size.
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// \brief A raw 8 KiB page buffer.
struct alignas(64) Page {
  std::array<std::byte, kPageSize> bytes;

  char* data() { return reinterpret_cast<char*>(bytes.data()); }
  const char* data() const { return reinterpret_cast<const char*>(bytes.data()); }
};

/// Cumulative I/O counters exposed by disk managers and the buffer pool.
/// Benchmarks convert `physical reads + writes` into simulated I/O time.
struct IoStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t evictions = 0;

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.physical_reads = physical_reads - other.physical_reads;
    d.physical_writes = physical_writes - other.physical_writes;
    d.pool_hits = pool_hits - other.pool_hits;
    d.pool_misses = pool_misses - other.pool_misses;
    d.evictions = evictions - other.evictions;
    return d;
  }
};

/// Atomic twin of IoStats: the form the disk managers and the buffer pool
/// maintain internally so concurrent readers (the partition-parallel ANN
/// engine) count I/O exactly without locks. Relaxed ordering is enough —
/// the counters are statistics, not synchronization.
struct AtomicIoStats {
  std::atomic<uint64_t> physical_reads{0};
  std::atomic<uint64_t> physical_writes{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};
  std::atomic<uint64_t> evictions{0};

  IoStats Load() const {
    IoStats s;
    s.physical_reads = physical_reads.load(std::memory_order_relaxed);
    s.physical_writes = physical_writes.load(std::memory_order_relaxed);
    s.pool_hits = pool_hits.load(std::memory_order_relaxed);
    s.pool_misses = pool_misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    physical_reads.store(0, std::memory_order_relaxed);
    physical_writes.store(0, std::memory_order_relaxed);
    pool_hits.store(0, std::memory_order_relaxed);
    pool_misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
  }
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_PAGE_H_
