#include "storage/paged_file.h"

#include <cassert>
#include <cstring>

namespace ann {

PagedFile::PagedFile(BufferPool* pool, size_t record_size)
    : pool_(pool), record_size_(record_size) {
  assert(record_size >= 1 && record_size <= kPageSize);
  records_per_page_ = kPageSize / record_size_;
  tail_.reserve(kPageSize);
}

Status PagedFile::Append(const char* record) {
  if (finished_) {
    return Status::InvalidArgument("PagedFile: Append after Finish");
  }
  tail_.insert(tail_.end(), record, record + record_size_);
  ++tail_records_;
  ++record_count_;
  if (tail_records_ == records_per_page_) {
    Result<PinnedPage> page = pool_->NewPage();
    if (!page.ok()) {
      // Roll the insert back so a failed Append leaves the file exactly as
      // it was (otherwise a retry would overflow the full tail page).
      tail_.resize(tail_.size() - record_size_);
      --tail_records_;
      --record_count_;
      return page.status();
    }
    std::memcpy(page->data(), tail_.data(), tail_.size());
    page->MarkDirty();
    pages_.push_back(page->page_id());
    tail_.clear();
    tail_records_ = 0;
  }
  return Status::OK();
}

Status PagedFile::Finish() {
  if (finished_) return Status::OK();
  if (tail_records_ > 0) {
    ANN_ASSIGN_OR_RETURN(PinnedPage page, pool_->NewPage());
    std::memcpy(page.data(), tail_.data(), tail_.size());
    page.MarkDirty();
    pages_.push_back(page.page_id());
    tail_.clear();
    tail_records_ = 0;
  }
  finished_ = true;
  return Status::OK();
}

Status PagedFile::ReadRecord(uint64_t i, char* out) const {
  if (!finished_) return Status::InvalidArgument("PagedFile: not finished");
  if (i >= record_count_) return Status::OutOfRange("PagedFile: record index");
  const uint64_t page_index = i / records_per_page_;
  const size_t slot = i % records_per_page_;
  ANN_ASSIGN_OR_RETURN(PinnedPage page, pool_->Fetch(pages_[page_index]));
  std::memcpy(out, page.data() + slot * record_size_, record_size_);
  return Status::OK();
}

size_t PagedFile::PageRecordCount(uint64_t page_index) const {
  if (page_index + 1 < pages_.size()) return records_per_page_;
  if (page_index >= pages_.size()) return 0;
  const uint64_t first = PageFirstRecord(page_index);
  return static_cast<size_t>(record_count_ - first);
}

Status PagedFile::ReadPage(uint64_t page_index, std::vector<char>* out,
                           size_t* count) const {
  if (!finished_) return Status::InvalidArgument("PagedFile: not finished");
  if (page_index >= pages_.size()) {
    return Status::OutOfRange("PagedFile: page index");
  }
  const size_t n = PageRecordCount(page_index);
  out->resize(n * record_size_);
  ANN_ASSIGN_OR_RETURN(PinnedPage page, pool_->Fetch(pages_[page_index]));
  std::memcpy(out->data(), page.data(), out->size());
  *count = n;
  return Status::OK();
}

}  // namespace ann
