#ifndef ANNLIB_STORAGE_PAGED_FILE_H_
#define ANNLIB_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace ann {

/// \brief A sequential file of fixed-size records packed into pages.
///
/// Used by the GORDER baseline to materialize the grid-order-sorted
/// datasets back to "disk" (the paper's GORDER writes the transformed,
/// sorted datasets to disk and then runs a block nested-loops join over
/// them). Records never span pages; `records_per_page()` records are packed
/// per page. All reads go through the buffer pool, so re-scanning the inner
/// file pays for its page misses.
class PagedFile {
 public:
  /// \param record_size bytes per record (must fit one page payload).
  PagedFile(BufferPool* pool, size_t record_size);

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  PagedFile(PagedFile&&) = default;

  /// Appends a record (write path; buffers into the current tail page).
  Status Append(const char* record);

  /// Flushes the tail page. Must be called after the last Append.
  Status Finish();

  /// Reads record `i` into `out` (record_size bytes).
  Status ReadRecord(uint64_t i, char* out) const;

  /// Reads all records of page `page_index` into `*out`
  /// (count * record_size bytes); returns the record count via *count.
  Status ReadPage(uint64_t page_index, std::vector<char>* out,
                  size_t* count) const;

  uint64_t record_count() const { return record_count_; }
  uint64_t page_count() const { return pages_.size(); }
  size_t record_size() const { return record_size_; }
  size_t records_per_page() const { return records_per_page_; }

  /// First record index stored on page `page_index`.
  uint64_t PageFirstRecord(uint64_t page_index) const {
    return page_index * records_per_page_;
  }
  /// Number of records on page `page_index`.
  size_t PageRecordCount(uint64_t page_index) const;

 private:
  BufferPool* pool_;
  size_t record_size_;
  size_t records_per_page_;
  std::vector<PageId> pages_;
  uint64_t record_count_ = 0;
  std::vector<char> tail_;  // unfinished tail page contents
  size_t tail_records_ = 0;
  bool finished_ = false;
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_PAGED_FILE_H_
