#include "storage/prefetcher.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/trace.h"

namespace ann {

Prefetcher::Prefetcher(BufferPool* pool, Options options)
    : pool_(pool),
      queue_capacity_(std::max<size_t>(1, options.queue_capacity)),
      worker_([this] { WorkerLoop(); }) {}

Prefetcher::~Prefetcher() { Stop(); }

bool Prefetcher::Enqueue(PageId id, const PageSnapshot& snap) {
  {
    MutexLock lock(&mu_);
    if (!stop_ && queue_.size() < queue_capacity_) {
      queue_.push_back(Hint{id, snap});
      issued_.fetch_add(1, std::memory_order_relaxed);
      obs_issued_->Increment();
      cv_.Signal();
      return true;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  obs_dropped_->Increment();
  return false;
}

void Prefetcher::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    // Pending hints are advisory — discard them (releasing their
    // snapshot epoch pins) rather than making shutdown wait on IO.
    queue_.clear();
    cv_.SignalAll();
  }
  if (worker_.joinable()) worker_.join();
}

void Prefetcher::WorkerLoop() {
  obs::SetCurrentThreadTraceName("prefetch");
  // One reusable read buffer: the pool memcpys an admitted page out of it
  // under the stripe latch, so the buffer is untouched between calls.
  auto scratch = std::make_unique<Page>();
  for (;;) {
    Hint hint;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stop_) cv_.Wait(&mu_);
      if (stop_) return;
      hint = std::move(queue_.front());
      queue_.pop_front();
    }
    if (!pool_->PrefetchPage(hint.page, hint.snap, scratch.get())) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      obs_dropped_->Increment();
    }
  }
}

}  // namespace ann
