#ifndef ANNLIB_STORAGE_PREFETCHER_H_
#define ANNLIB_STORAGE_PREFETCHER_H_

#include <cstddef>
#include <deque>
#include <thread>

#include "common/mutex.h"
#include "obs/obs.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace ann {

/// \brief Background IO thread that warms BufferPool frames from
/// readahead hints.
///
/// The traversal engine knows the child pages it will expand one step
/// before it faults them (the Expand stage holds the parent's child
/// entries before calling ExpandBatch on them), so it enqueues the pages
/// here instead of waiting to fault synchronously. A single worker
/// thread drains the queue and calls BufferPool::PrefetchPage, whose
/// admission rules (clean-victim-only, capacity/4 budget, snapshot-epoch
/// awareness) make every hint safe to act on or drop.
///
/// Hints are ADVISORY END TO END: Enqueue never blocks (a full queue
/// drops the hint), the pool may decline admission, and a warmed frame
/// may be evicted before it is demanded. Results are bit-identical with
/// the prefetcher attached or not — the only observable differences are
/// timing and the prefetch.{issued,hits,dropped} counters.
///
/// Each hint carries a PageSnapshot copy, so the epochs a queued hint
/// resolves through stay pinned until the hint is consumed or the
/// prefetcher is destroyed. Destroy the prefetcher before the pool, and
/// before any quiesce point that requires all snapshots released (e.g.
/// BufferPool::Reset).
///
/// Thread-safety: Enqueue may be called from any number of threads
/// concurrently with the worker. Stop/destructor joins the worker;
/// pending hints are discarded (they are only hints).
class Prefetcher {
 public:
  struct Options {
    /// Bounded hint queue; Enqueue drops (never blocks) when full.
    size_t queue_capacity = 256;
  };

  explicit Prefetcher(BufferPool* pool) : Prefetcher(pool, Options{}) {}
  Prefetcher(BufferPool* pool, Options options);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Non-blocking readahead hint: logical page `id`, resolved at `snap`'s
  /// epoch (pass the traversal's snapshot; an invalid snapshot means
  /// "current state", which a versioned pool will decline). Returns false
  /// — and counts prefetch.dropped — when the queue is full or the
  /// prefetcher is stopped.
  bool Enqueue(PageId id, const PageSnapshot& snap) ANNLIB_EXCLUDES(mu_);

  /// Stops and joins the worker (idempotent; also run by the destructor).
  /// Pending hints are discarded and their snapshots released.
  void Stop();

  /// Hints accepted into the queue so far (prefetch.issued).
  uint64_t issued() const {
    return issued_.load(std::memory_order_relaxed);
  }
  /// Hints dropped: queue-full, declined admission, or stopped.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Hint {
    PageId page = kInvalidPageId;
    PageSnapshot snap;
  };

  void WorkerLoop();

  BufferPool* const pool_;
  const size_t queue_capacity_;

  mutable Mutex mu_{"prefetcher.queue", kMutexRankPrefetcher};
  CondVar cv_;
  std::deque<Hint> queue_ ANNLIB_GUARDED_BY(mu_);
  bool stop_ ANNLIB_GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> issued_{0};
  std::atomic<uint64_t> dropped_{0};
  obs::Counter* obs_issued_ = obs::GetCounter("storage.prefetch.issued");
  obs::Counter* obs_dropped_ = obs::GetCounter("storage.prefetch.dropped");

  std::thread worker_;
};

}  // namespace ann

#endif  // ANNLIB_STORAGE_PREFETCHER_H_
