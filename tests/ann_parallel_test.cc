// Determinism and cancellation behaviour of the partition-parallel ANN
// engine: sorted results AND summed PruneStats must be identical at every
// thread count (the per-LPQ work is order-invariant — see DESIGN.md
// "Parallel execution"), and a non-OK streaming sink must abort the whole
// run, cancelling the tasks still in flight.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ann/mba.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

enum class IndexKind { kMbrqt, kRstar };

struct BuiltIndex {
  std::unique_ptr<Mbrqt> qt;
  std::unique_ptr<RStarTree> rt;
  std::unique_ptr<MemIndexView> view;
};

BuiltIndex BuildIndex(IndexKind kind, const Dataset& data) {
  BuiltIndex out;
  if (kind == IndexKind::kMbrqt) {
    MbrqtOptions opts;
    opts.bucket_capacity = 16;
    auto res = Mbrqt::Build(data, opts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    out.qt = std::make_unique<Mbrqt>(std::move(res).value());
    out.view = std::make_unique<MemIndexView>(&out.qt->Finalize());
  } else {
    RStarOptions opts;
    opts.leaf_capacity = 16;
    opts.internal_capacity = 8;
    auto res = RStarTree::BulkLoadStr(data, opts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    out.rt = std::make_unique<RStarTree>(std::move(res).value());
    out.view = std::make_unique<MemIndexView>(&out.rt->tree());
  }
  return out;
}

Dataset MakeData(Distribution dist, size_t n) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = n;
  spec.distribution = dist;
  spec.seed = 91;
  auto res = GenerateGstd(spec);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return std::move(res).value();
}

/// Canonical rendering of a sorted result set, byte-comparable across
/// runs (%.17g round-trips doubles exactly).
std::string Render(std::vector<NeighborList> results) {
  SortByQueryId(&results);
  std::ostringstream os;
  char buf[64];
  for (const NeighborList& list : results) {
    os << list.r_id << ":";
    for (const auto& [id, dist] : list.neighbors) {
      std::snprintf(buf, sizeof(buf), " (%llu, %.17g)",
                    (unsigned long long)id, dist);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

struct RunOutput {
  std::string rendered;
  std::string stats;
  size_t result_count = 0;
};

RunOutput RunAt(const MemIndexView& ir, const MemIndexView& is,
                AnnOptions options, int threads) {
  options.num_threads = threads;
  std::vector<NeighborList> out;
  PruneStats stats;
  EXPECT_OK(AllNearestNeighbors(ir, is, options, &out, &stats));
  RunOutput r;
  r.result_count = out.size();
  r.rendered = Render(std::move(out));
  r.stats = stats.ToString();
  return r;
}

struct Config {
  IndexKind index;
  Distribution dist;
  AnnOptions options;
  const char* name;
};

std::vector<Config> Configs() {
  std::vector<Config> cs;
  {
    Config c{IndexKind::kMbrqt, Distribution::kUniform, AnnOptions{},
             "mbrqt_uniform_ann"};
    cs.push_back(c);
  }
  {
    Config c{IndexKind::kRstar, Distribution::kUniform, AnnOptions{},
             "rstar_uniform_ann"};
    cs.push_back(c);
  }
  {
    Config c{IndexKind::kMbrqt, Distribution::kClustered, AnnOptions{},
             "mbrqt_clustered_aknn4"};
    c.options.k = 4;
    cs.push_back(c);
  }
  {
    Config c{IndexKind::kRstar, Distribution::kClustered, AnnOptions{},
             "rstar_clustered_aknn4"};
    c.options.k = 4;
    cs.push_back(c);
  }
  {
    // Range-limited: exercises empty-subtree emission (some of it during
    // partition planning).
    Config c{IndexKind::kMbrqt, Distribution::kClustered, AnnOptions{},
             "mbrqt_clustered_maxdist"};
    c.options.max_distance = 0.01;
    cs.push_back(c);
  }
  return cs;
}

TEST(AnnParallelTest, ResultsAndStatsIdenticalAcrossThreadCounts) {
  for (const Config& cfg : Configs()) {
    SCOPED_TRACE(cfg.name);
    const Dataset all = MakeData(cfg.dist, 4000);
    Dataset r, s;
    SplitHalves(all, &r, &s);
    const BuiltIndex ir = BuildIndex(cfg.index, r);
    const BuiltIndex is = BuildIndex(cfg.index, s);

    const RunOutput seq = RunAt(*ir.view, *is.view, cfg.options, 1);
    EXPECT_EQ(seq.result_count, r.size());
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(threads);
      const RunOutput par = RunAt(*ir.view, *is.view, cfg.options, threads);
      EXPECT_EQ(par.rendered, seq.rendered);
      EXPECT_EQ(par.stats, seq.stats);
    }
  }
}

TEST(AnnParallelTest, AutoThreadCountRuns) {
  const Dataset all = MakeData(Distribution::kUniform, 2000);
  Dataset r, s;
  SplitHalves(all, &r, &s);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  AnnOptions options;
  const RunOutput seq = RunAt(*ir.view, *is.view, options, 1);
  const RunOutput auto_run = RunAt(*ir.view, *is.view, options, 0);
  EXPECT_EQ(auto_run.rendered, seq.rendered);
  EXPECT_EQ(auto_run.stats, seq.stats);
}

TEST(AnnParallelTest, ExplicitPartitionFanoutRuns) {
  const Dataset all = MakeData(Distribution::kUniform, 2000);
  Dataset r, s;
  SplitHalves(all, &r, &s);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  AnnOptions options;
  const RunOutput seq = RunAt(*ir.view, *is.view, options, 1);
  options.partition_fanout = 3;
  const RunOutput par = RunAt(*ir.view, *is.view, options, 4);
  EXPECT_EQ(par.rendered, seq.rendered);
  EXPECT_EQ(par.stats, seq.stats);
}

TEST(AnnParallelTest, SmallInputFallsBackToSequential) {
  // Below the parallel threshold the engine must run the classic path
  // (and still be correct) whatever num_threads says.
  const Dataset all = MakeData(Distribution::kUniform, 200);
  Dataset r, s;
  SplitHalves(all, &r, &s);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  AnnOptions options;
  const RunOutput seq = RunAt(*ir.view, *is.view, options, 1);
  const RunOutput par = RunAt(*ir.view, *is.view, options, 8);
  EXPECT_EQ(par.rendered, seq.rendered);
  EXPECT_EQ(par.stats, seq.stats);
}

TEST(AnnParallelTest, SinkErrorAbortsRunAndCancelsOutstandingTasks) {
  const Dataset all = MakeData(Distribution::kUniform, 4000);
  Dataset r, s;
  SplitHalves(all, &r, &s);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  AnnOptions options;
  options.num_threads = 4;
  std::atomic<int> sink_calls{0};
  const Status st = AllNearestNeighbors(
      *ir.view, *is.view, options, [&sink_calls](NeighborList&&) {
        sink_calls.fetch_add(1);
        return Status::IOError("sink full");
      });
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "sink full");
  // The merge stops at the first sink error; only one result reached it.
  EXPECT_EQ(sink_calls.load(), 1);
}

TEST(AnnParallelTest, TaskCountsAreWellBelowQueryCount) {
  // Sanity-check the partitioner actually split the run into a handful of
  // subtree tasks rather than degenerating to per-object tasks: the
  // parallel run must finish with exactly the same result set, which the
  // main determinism test covers; here we only confirm the parallel path
  // engages (it must not fall back for 2000 objects).
  const Dataset all = MakeData(Distribution::kUniform, 4000);
  Dataset r, s;
  SplitHalves(all, &r, &s);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);
  ASSERT_GE(ir.view->num_objects(), 512u);

  AnnOptions options;
  options.num_threads = 2;
  std::vector<NeighborList> out;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, options, &out));
  EXPECT_EQ(out.size(), r.size());
}

}  // namespace
}  // namespace ann
