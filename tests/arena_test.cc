#include "common/arena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "ann/lpq.h"
#include "common/geometry.h"
#include "index/spatial_index.h"

// ---------------------------------------------------------------------------
// Global operator new instrumentation.
//
// The PR's acceptance bar is ZERO steady-state heap allocations per LPQ
// entry, so this TU replaces the global allocation functions with counting
// wrappers. Every allocation in the process (gtest included) routes
// through here; the tests therefore measure *deltas* around the region of
// interest rather than absolute counts.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

// GCC pairs new-expressions with these replacements and warns that the
// malloc/free plumbing "mismatches" — by design here: replacement
// allocation functions may be implemented on top of malloc.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace ann {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                       size_t{16}}) {
    for (size_t bytes : {size_t{1}, size_t{3}, size_t{8}, size_t{100}}) {
      void* p = arena.Allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
      std::memset(p, 0xAB, bytes);  // must be writable (ASan checks)
    }
  }
}

TEST(ArenaTest, GrowsByBlocksAndTracksBytes) {
  Arena arena(/*min_block_bytes=*/64);
  EXPECT_EQ(arena.block_count(), 0u);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  arena.Allocate(16);
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.allocated_bytes(), 16u);
  // An oversized request gets its own block rather than failing.
  void* big = arena.Allocate(10000);
  std::memset(big, 0, 10000);
  EXPECT_GE(arena.capacity_bytes(), 10000u + 64u);
  EXPECT_EQ(arena.allocated_bytes(), 16u + 10000u);
}

TEST(ArenaTest, ResetRetainsBlocksAndReusesMemory) {
  Arena arena(/*min_block_bytes=*/1024);
  void* first = arena.Allocate(100);
  std::memset(first, 1, 100);
  for (int i = 0; i < 100; ++i) arena.Allocate(512);  // span several blocks
  const size_t blocks = arena.block_count();
  const size_t capacity = arena.capacity_bytes();

  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.block_count(), blocks);  // nothing released

  // The same sequence replays into the same memory: no new blocks, and
  // the first allocation lands exactly where it did before. Writing to it
  // also proves Reset's ASan poisoning is correctly undone by Allocate.
  void* again = arena.Allocate(100);
  EXPECT_EQ(again, first);
  std::memset(again, 2, 100);
  for (int i = 0; i < 100; ++i) arena.Allocate(512);
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.capacity_bytes(), capacity);
}

TEST(ArenaTest, WarmedArenaServesWithoutHeapAllocations) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 4096; ++i) v.push_back(i);  // warm-up: blocks appear

  const uint64_t heap_before = g_heap_allocs.load();
  ArenaVector<int> w{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 4096; ++i) w.push_back(i);
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "vector growth inside a warmed arena must not touch the heap";
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  ArenaVector<int> v;  // default allocator: arena == nullptr
  const uint64_t heap_before = g_heap_allocs.load();
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(g_heap_allocs.load(), heap_before);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
}

TEST(ArenaAllocatorTest, EqualityFollowsTheArena) {
  Arena a, b;
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<char>(&a));
  EXPECT_TRUE(ArenaAllocator<int>(&a) != ArenaAllocator<int>(&b));
  EXPECT_TRUE(ArenaAllocator<int>() == ArenaAllocator<double>());
}

// The end-to-end steady-state property the engine relies on: a recycled,
// arena-backed LPQ processes a full admission workload — including entry
// storage, sort-key insertion and live-bound bookkeeping — with zero
// calls into the global heap and zero new arena bytes (capacity retained
// by Lpq::Reset absorbs the whole pass).
TEST(ArenaLpqTest, SteadyStateLpqPassIsHeapAllocationFree) {
  Arena arena;
  const Scalar origin[2] = {0, 0};
  const IndexEntry owner = IndexEntry::Object(origin, 2, 0);
  Lpq lpq(owner, kInf, /*k=*/1, /*level=*/0, &arena);
  PruneStats stats;

  const auto run_pass = [&] {
    lpq.Reset(owner, kInf, /*k=*/1, /*level=*/0);
    for (int i = 0; i < 512; ++i) {
      // Decreasing distances so every attempt is admitted (worst case for
      // storage growth; increasing order would be pruned on entry).
      const Scalar d2 = 1e6 - i;
      const Scalar p[2] = {d2, 0};
      lpq.EnqueueObject(/*id=*/static_cast<uint64_t>(i), p, 2, d2,
                        /*level=*/1, &stats);
    }
  };

  run_pass();  // warm-up: arena blocks and container capacity materialize

  const uint64_t heap_before = g_heap_allocs.load();
  run_pass();
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "steady-state LPQ admission must not allocate from the heap";
}

}  // namespace
}  // namespace ann
