#include <gtest/gtest.h>

#include "baselines/bnn.h"
#include "baselines/mnn.h"
#include "datagen/gstd.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

struct Workload {
  Dataset r;
  Dataset s;
};

Workload MakeWorkload(int dim, size_t nr, size_t ns, uint64_t seed) {
  return {RandomDataset(dim, nr, seed), RandomDataset(dim, ns, seed + 1)};
}

class BnnTest : public ::testing::TestWithParam<PruneMetric> {};

TEST_P(BnnTest, AnnMatchesBruteForce) {
  const Workload w = MakeWorkload(2, 800, 1000, 50);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(w.s));
  const MemIndexView view(&tree.tree());
  BnnOptions opts;
  opts.metric = GetParam();
  std::vector<NeighborList> got;
  SearchStats stats;
  ASSERT_OK(BatchedNearestNeighbors(w.r, view, opts, &got, &stats));
  EXPECT_EQ(got.size(), w.r.size());
  ExpectExactAknn(w.r, w.s, 1, std::move(got));
  EXPECT_GT(stats.nodes_expanded, 0u);
}

TEST_P(BnnTest, AknnMatchesBruteForce) {
  const Workload w = MakeWorkload(3, 300, 600, 60);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(w.s));
  const MemIndexView view(&tree.tree());
  BnnOptions opts;
  opts.metric = GetParam();
  opts.k = 7;
  std::vector<NeighborList> got;
  ASSERT_OK(BatchedNearestNeighbors(w.r, view, opts, &got));
  ExpectExactAknn(w.r, w.s, 7, std::move(got));
}

TEST_P(BnnTest, SmallGroupsStillExact) {
  const Workload w = MakeWorkload(2, 200, 300, 70);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(w.s));
  const MemIndexView view(&tree.tree());
  BnnOptions opts;
  opts.metric = GetParam();
  opts.group_size = 3;
  std::vector<NeighborList> got;
  ASSERT_OK(BatchedNearestNeighbors(w.r, view, opts, &got));
  ExpectExactAknn(w.r, w.s, 1, std::move(got));
}

INSTANTIATE_TEST_SUITE_P(Metrics, BnnTest,
                         ::testing::Values(PruneMetric::kMaxMaxDist,
                                           PruneMetric::kNxnDist),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

TEST(BnnTest, ClusteredDataExact) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 2000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 81;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());
  std::vector<NeighborList> got;
  ASSERT_OK(BatchedNearestNeighbors(r, view, BnnOptions{}, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST(BnnTest, KLargerThanTarget) {
  const Workload w = MakeWorkload(2, 40, 5, 90);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(w.s));
  const MemIndexView view(&tree.tree());
  BnnOptions opts;
  opts.k = 9;
  std::vector<NeighborList> got;
  ASSERT_OK(BatchedNearestNeighbors(w.r, view, opts, &got));
  ExpectExactAknn(w.r, w.s, 9, std::move(got));
}

TEST(BnnTest, RejectsDimMismatch) {
  const Dataset r = RandomDataset(2, 10, 1);
  const Dataset s = RandomDataset(3, 10, 2);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());
  std::vector<NeighborList> got;
  EXPECT_TRUE(BatchedNearestNeighbors(r, view, BnnOptions{}, &got)
                  .IsInvalidArgument());
}

class MnnTest : public ::testing::TestWithParam<bool> {};

TEST_P(MnnTest, AnnMatchesBruteForce) {
  const Workload w = MakeWorkload(2, 600, 800, 100);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(w.s));
  const MemIndexView view(&tree.tree());
  MnnOptions opts;
  opts.seed_bound = GetParam();
  std::vector<NeighborList> got;
  SearchStats stats;
  ASSERT_OK(MultipleNearestNeighbors(w.r, view, opts, &got, &stats));
  ExpectExactAknn(w.r, w.s, 1, std::move(got));
}

TEST_P(MnnTest, AknnMatchesBruteForce) {
  const Workload w = MakeWorkload(4, 200, 500, 110);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(w.s));
  const MemIndexView view(&tree.tree());
  MnnOptions opts;
  opts.seed_bound = GetParam();
  opts.k = 5;
  std::vector<NeighborList> got;
  ASSERT_OK(MultipleNearestNeighbors(w.r, view, opts, &got));
  ExpectExactAknn(w.r, w.s, 5, std::move(got));
}

INSTANTIATE_TEST_SUITE_P(SeedBound, MnnTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Seeded" : "Unseeded";
                         });

TEST(MnnTest, SeedingReducesWork) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 4000;
  spec.distribution = Distribution::kUniform;
  spec.seed = 120;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());

  MnnOptions opts;
  std::vector<NeighborList> got;
  SearchStats seeded, unseeded;
  opts.seed_bound = true;
  ASSERT_OK(MultipleNearestNeighbors(r, view, opts, &got, &seeded));
  got.clear();
  opts.seed_bound = false;
  ASSERT_OK(MultipleNearestNeighbors(r, view, opts, &got, &unseeded));
  EXPECT_LE(seeded.heap_pushes, unseeded.heap_pushes);
}

}  // namespace
}  // namespace ann
