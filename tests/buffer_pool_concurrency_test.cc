// Concurrency behaviour of the striped buffer pool: correct page contents
// under parallel fetches, exact atomic counters, per-stripe capacity
// semantics, and stripe-count clamping. The single-stripe (default)
// replacement semantics are covered by buffer_pool_test.cc.

#include "storage/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk_manager.h"
#include "test_util.h"

namespace ann {
namespace {

/// Allocates `n` pages whose first bytes hold the page id.
void SeedPages(MemDiskManager* disk, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    auto id = disk->AllocatePage();
    ASSERT_TRUE(id.ok());
    Page page;
    page.bytes.fill(std::byte{0});
    const PageId pid = *id;
    std::memcpy(page.data(), &pid, sizeof(pid));
    ASSERT_OK(disk->WritePage(*id, page));
  }
}

TEST(BufferPoolConcurrencyTest, StripeCountIsClamped) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2, Replacement::kLru, 8);
  EXPECT_EQ(pool.num_stripes(), 2u);
  EXPECT_EQ(pool.capacity(), 2u);

  BufferPool one(&disk, 64, Replacement::kLru);
  EXPECT_EQ(one.num_stripes(), 1u);
}

TEST(BufferPoolConcurrencyTest, ConcurrentFetchesReturnCorrectPages) {
  constexpr size_t kPages = 256;
  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 2000;

  MemDiskManager disk;
  SeedPages(&disk, kPages);
  BufferPool pool(&disk, 32, Replacement::kLru, 4);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t, &mismatches, &failures] {
      uint64_t state = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int i = 0; i < kFetchesPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const PageId id = static_cast<PageId>((state >> 33) % kPages);
        auto pinned = pool.Fetch(id);
        if (!pinned.ok()) {
          failures.fetch_add(1);
          continue;
        }
        PageId stored = kInvalidPageId;
        std::memcpy(&stored, pinned->data(), sizeof(stored));
        if (stored != id) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  // Atomic counters account for every fetch exactly.
  const IoStats io = pool.stats();
  EXPECT_EQ(io.pool_hits + io.pool_misses,
            static_cast<uint64_t>(kThreads) * kFetchesPerThread);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  const BufferPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.capacity, 32u);
  EXPECT_LE(stats.cached_pages, 32u);
}

TEST(BufferPoolConcurrencyTest, ConcurrentNewPagesGetDistinctIds) {
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 64;

  MemDiskManager disk;
  BufferPool pool(&disk, 1024, Replacement::kLru, 4);

  std::vector<std::vector<PageId>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &ids, t] {
      for (int i = 0; i < kPagesPerThread; ++i) {
        auto pinned = pool.NewPage();
        if (pinned.ok()) ids[t].push_back(pinned->page_id());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<PageId> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kThreads) * kPagesPerThread);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate page id handed out";
  EXPECT_EQ(disk.page_count(), all.size());
}

TEST(BufferPoolConcurrencyTest, PinExhaustionIsPerStripe) {
  // capacity 2, stripes 2 -> one frame per stripe; pages map to stripes
  // by id % 2. Pinning page 0 fills stripe 0 entirely, so fetching page 2
  // (also stripe 0) must fail even though stripe 1 is empty.
  MemDiskManager disk;
  SeedPages(&disk, 4);
  BufferPool pool(&disk, 2, Replacement::kLru, 2);
  ASSERT_EQ(pool.num_stripes(), 2u);

  auto p0 = pool.Fetch(0);
  ASSERT_TRUE(p0.ok());
  auto p2 = pool.Fetch(2);
  ASSERT_FALSE(p2.ok());
  EXPECT_TRUE(p2.status().IsOutOfRange());

  // Stripe 1 still serves its own pages.
  auto p1 = pool.Fetch(1);
  ASSERT_TRUE(p1.ok());

  // Releasing the stripe-0 pin frees the frame for page 2.
  p0->Release();
  auto p2_again = pool.Fetch(2);
  EXPECT_TRUE(p2_again.ok());
}

TEST(BufferPoolConcurrencyTest, DirtyPagesSurviveConcurrentChurn) {
  // Writers mark their own page dirty under pin; churn from other stripes
  // forces evictions; FlushAll must persist every write exactly.
  constexpr size_t kPages = 64;
  MemDiskManager disk;
  SeedPages(&disk, kPages);
  BufferPool pool(&disk, 8, Replacement::kLru, 4);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (size_t i = 0; i < kPages; ++i) {
        auto pinned = pool.Fetch(static_cast<PageId>(i));
        if (!pinned.ok()) continue;
        // Byte 128+t is private to this thread; no write overlap.
        pinned->data()[128 + t] = static_cast<char>(t + 1);
        pinned->MarkDirty();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_OK(pool.FlushAll());

  for (size_t i = 0; i < kPages; ++i) {
    Page page;
    ASSERT_OK(disk.ReadPage(static_cast<PageId>(i), &page));
    PageId stored = kInvalidPageId;
    std::memcpy(&stored, page.data(), sizeof(stored));
    EXPECT_EQ(stored, i);
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(page.data()[128 + t], static_cast<char>(t + 1))
          << "page " << i << " lost thread " << t << "'s write";
    }
  }
}

}  // namespace
}  // namespace ann
