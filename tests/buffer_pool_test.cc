#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

namespace ann {
namespace {

TEST(BufferPoolTest, NewPageIsPinnedAndZeroed) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
  EXPECT_EQ(pool.pinned_pages(), 1u);
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(page.data()[i], 0);
  page.Release();
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(BufferPoolTest, FetchHitDoesNotTouchDisk) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
  const PageId id = page.page_id();
  page.Release();

  disk.ResetStats();
  pool.ResetStats();
  ASSERT_OK_AND_ASSIGN(PinnedPage again, pool.Fetch(id));
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(pool.stats().pool_misses, 0u);
  EXPECT_EQ(disk.stats().physical_reads, 0u);
}

TEST(BufferPoolTest, StatsSnapshotReportsCountersAndOccupancy) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  ASSERT_OK_AND_ASSIGN(PinnedPage a, pool.NewPage());
  const PageId id = a.page_id();
  a.Release();
  ASSERT_OK_AND_ASSIGN(PinnedPage b, pool.Fetch(id));  // hit

  const BufferPoolStats snap = pool.Stats();
  EXPECT_EQ(snap.capacity, 4u);
  EXPECT_EQ(snap.cached_pages, 1u);
  EXPECT_EQ(snap.pinned_pages, 1u);
  EXPECT_EQ(snap.io.pool_hits, 1u);
  EXPECT_EQ(snap.io.pool_misses, 0u);
  EXPECT_EQ(snap.io.evictions, 0u);
  EXPECT_DOUBLE_EQ(snap.hit_rate(), 1.0);
  b.Release();
  EXPECT_EQ(pool.Stats().pinned_pages, 0u);
}

TEST(BufferPoolTest, DirtyPageSurvivesEviction) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
  const PageId id = page.page_id();
  std::strcpy(page.data(), "payload");
  page.MarkDirty();
  page.Release();

  // Evict by filling the pool with other pages.
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage p, pool.NewPage());
    p.Release();
  }
  ASSERT_OK_AND_ASSIGN(PinnedPage back, pool.Fetch(id));
  EXPECT_STREQ(back.data(), "payload");
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  PageId a, b;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage pa, pool.NewPage());
    a = pa.page_id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage pb, pool.NewPage());
    b = pb.page_id();
  }
  // Touch `a` so `b` becomes LRU.
  { ASSERT_OK_AND_ASSIGN(PinnedPage pa, pool.Fetch(a)); }
  // A third page must evict b, not a.
  { ASSERT_OK_AND_ASSIGN(PinnedPage pc, pool.NewPage()); }
  pool.ResetStats();
  { ASSERT_OK_AND_ASSIGN(PinnedPage pa, pool.Fetch(a)); }
  EXPECT_EQ(pool.stats().pool_hits, 1u);  // a stayed cached
  { ASSERT_OK_AND_ASSIGN(PinnedPage pb, pool.Fetch(b)); }
  EXPECT_EQ(pool.stats().pool_misses, 1u);  // b was evicted
}

TEST(BufferPoolTest, PinnedPagesAreNotEvictable) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  ASSERT_OK_AND_ASSIGN(PinnedPage a, pool.NewPage());
  ASSERT_OK_AND_ASSIGN(PinnedPage b, pool.NewPage());
  // Pool full of pins: a third page cannot be placed.
  auto res = pool.NewPage();
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsOutOfRange());
  b.Release();
  ASSERT_OK_AND_ASSIGN(PinnedPage c, pool.NewPage());  // now fine
}

TEST(BufferPoolTest, DoublePinIsCounted) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  ASSERT_OK_AND_ASSIGN(PinnedPage a, pool.NewPage());
  const PageId id = a.page_id();
  ASSERT_OK_AND_ASSIGN(PinnedPage a2, pool.Fetch(id));
  EXPECT_EQ(pool.pinned_pages(), 1u);  // one page, two pins
  a.Release();
  EXPECT_EQ(pool.pinned_pages(), 1u);  // still pinned via a2
  a2.Release();
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(BufferPoolTest, MovePinTransfersOwnership) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  ASSERT_OK_AND_ASSIGN(PinnedPage a, pool.NewPage());
  PinnedPage moved = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pool.pinned_pages(), 1u);
  moved.Release();
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST(BufferPoolTest, FlushAllWritesDirtyFrames) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
  const PageId id = page.page_id();
  std::strcpy(page.data(), "flushed");
  page.MarkDirty();
  page.Release();
  ASSERT_OK(pool.FlushAll());

  Page raw;
  ASSERT_OK(disk.ReadPage(id, &raw));
  EXPECT_STREQ(raw.data(), "flushed");
}

TEST(BufferPoolTest, ResetChangesCapacityAndDropsCache) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    id = page.page_id();
    std::strcpy(page.data(), "kept");
    page.MarkDirty();
  }
  ASSERT_OK(pool.Reset(64));
  EXPECT_EQ(pool.capacity(), 64u);
  EXPECT_EQ(pool.cached_pages(), 0u);
  // Content must have been flushed to disk before the drop.
  ASSERT_OK_AND_ASSIGN(PinnedPage back, pool.Fetch(id));
  EXPECT_STREQ(back.data(), "kept");
}

TEST(BufferPoolTest, ResetWithPinsFails) {
  MemDiskManager disk;
  BufferPool pool(&disk, 4);
  ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
  EXPECT_TRUE(pool.Reset(8).IsInvalidArgument());
}

TEST(BufferPoolTest, ClockPolicyBasicCorrectness) {
  MemDiskManager disk;
  BufferPool pool(&disk, 3, Replacement::kClock);
  EXPECT_EQ(pool.replacement(), Replacement::kClock);
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    std::snprintf(page.data(), 32, "clock-%d", i);
    page.MarkDirty();
    ids.push_back(page.page_id());
  }
  for (int i = 0; i < 12; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.Fetch(ids[i]));
    char expect[32];
    std::snprintf(expect, 32, "clock-%d", i);
    EXPECT_STREQ(page.data(), expect);
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST(BufferPoolTest, ClockGivesSecondChanceToReferencedFrames) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2, Replacement::kClock);
  PageId a, b;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage pa, pool.NewPage());
    a = pa.page_id();
  }
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage pb, pool.NewPage());
    b = pb.page_id();
  }
  // Re-reference `a`; after one sweep-clearing eviction `b` must go
  // before `a` does (a's bit gets set again below).
  { ASSERT_OK_AND_ASSIGN(PinnedPage pa, pool.Fetch(a)); }
  { ASSERT_OK_AND_ASSIGN(PinnedPage pc, pool.NewPage()); }
  pool.ResetStats();
  // One of a/b was evicted; with the second-chance sweep both had their
  // bits set, so the hand cleared them in order and evicted frame 0's
  // page. The correctness property we assert: the pool never evicts a
  // pinned page and re-reads stay correct.
  { ASSERT_OK_AND_ASSIGN(PinnedPage pa, pool.Fetch(a)); }
  { ASSERT_OK_AND_ASSIGN(PinnedPage pb, pool.Fetch(b)); }
  EXPECT_EQ(pool.stats().pool_hits + pool.stats().pool_misses, 2u);
}

TEST(BufferPoolTest, ClockAllPinnedFails) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2, Replacement::kClock);
  ASSERT_OK_AND_ASSIGN(PinnedPage a, pool.NewPage());
  ASSERT_OK_AND_ASSIGN(PinnedPage b, pool.NewPage());
  auto res = pool.NewPage();
  EXPECT_TRUE(res.status().IsOutOfRange());
}

TEST(BufferPoolTest, WorkloadLargerThanPoolStaysCorrect) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    std::snprintf(page.data(), 32, "page-%d", i);
    page.MarkDirty();
    ids.push_back(page.page_id());
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.Fetch(ids[i]));
    char expect[32];
    std::snprintf(expect, 32, "page-%d", i);
    EXPECT_STREQ(page.data(), expect);
  }
  EXPECT_GT(pool.stats().pool_misses, 0u);
}

}  // namespace
}  // namespace ann
