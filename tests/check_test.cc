// Tests for the src/check invariant-checker subsystem: clean passes over
// healthy structures (including the seeded Figure 3a workload), negative
// tests that corrupt a structure in memory and assert the checker reports
// the exact violation, and paranoid_checks engine runs at 1 and 8 threads.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ann/lpq.h"
#include "ann/mba.h"
#include "check/check.h"
#include "check/invariants.h"
#include "datagen/gstd.h"
#include "datagen/real_sim.h"
#include "index/mbrqt/mbrqt.h"
#include "index/node_format.h"
#include "index/rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace ann {
namespace {

/// Asserts `st` is the Internal status the checkers emit and that its
/// message names the exact violation (substring match).
void ExpectViolation(const Status& st, const std::string& needle) {
  ASSERT_FALSE(st.ok()) << "expected a violation mentioning \"" << needle
                        << "\", got OK";
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_NE(st.message().find("invariant violated"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find(needle), std::string::npos)
      << "message does not name the violation: " << st.ToString();
}

/// The Figure 3a workload at test scale: TAC-like 2-D data split into the
/// R and S halves (the benchmark uses 700k points; 4k keeps the test fast
/// while clearing the engine's 512-object parallel threshold).
void Fig3aWorkload(Dataset* r, Dataset* s) {
  ASSERT_OK_AND_ASSIGN(const Dataset tac, MakeTacLike(4000));
  SplitHalves(tac, r, s);
}

// ---------------------------------------------------------------------------
// MBRQT / MemTree

TEST(CheckMbrqtTest, CleanTreePasses) {
  Dataset r, s;
  Fig3aWorkload(&r, &s);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(r));
  EXPECT_OK(CheckMbrqtInvariants(qt.Finalize()));
}

TEST(CheckMbrqtTest, DetectsLooseNodeMbr) {
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(RandomDataset(2, 300, 11)));
  MemTree tree = qt.Finalize();  // private corruptible copy
  ASSERT_OK(CheckMbrqtInvariants(tree));
  // Inflate the root's MBR: it no longer equals the tight union of its
  // entries (the root is always reachable, whatever the tree shape).
  tree.nodes[tree.root].mbr.hi[0] += 0.25;
  ExpectViolation(CheckMbrqtInvariants(tree),
                  "not the tight union of its entries");
}

TEST(CheckMbrqtTest, DetectsShiftedLeafPoint) {
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(RandomDataset(2, 300, 12)));
  MemTree tree = qt.Finalize();
  ASSERT_OK(CheckMbrqtInvariants(tree));
  // Drag one leaf point far outside its node's MBR: tightness breaks.
  for (auto& node : tree.nodes) {
    if (!node.is_leaf || node.entries.empty()) continue;
    node.entries[0].mbr.lo[1] -= 5.0;
    node.entries[0].mbr.hi[1] -= 5.0;
    break;
  }
  ExpectViolation(CheckMbrqtInvariants(tree),
                  "not the tight union of its entries");
}

TEST(CheckMbrqtTest, DetectsSiblingOverlap) {
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(RandomDataset(2, 500, 13)));
  MemTree tree = qt.Finalize();
  ASSERT_OK(CheckMbrqtInvariants(tree));
  // Grow one child entry AND its child node consistently until it invades
  // a sibling's interior — tightness at the parent still breaks, so grow
  // the parent too; the disjointness check must fire regardless.
  MemNode& root = tree.nodes[tree.root];
  ASSERT_FALSE(root.is_leaf);
  ASSERT_GE(root.entries.size(), 2u);
  Rect grown = root.entries[0].mbr;
  grown.ExpandToRect(root.entries[1].mbr);
  root.entries[0].mbr = grown;
  tree.nodes[root.entries[0].child].mbr = grown;
  ExpectViolation(CheckMbrqtInvariants(tree), "interior-overlapping MBRs");
}

TEST(CheckMbrqtTest, DetectsSharedSubtree) {
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(RandomDataset(2, 500, 14)));
  MemTree tree = qt.Finalize();
  MemNode& root = tree.nodes[tree.root];
  ASSERT_FALSE(root.is_leaf);
  ASSERT_GE(root.entries.size(), 2u);
  // Alias two entries to the same child: the walker must refuse the DAG.
  // (The duplicated entry also breaks disjointness/tightness; either way a
  // violation must surface — assert the generic prefix only.)
  root.entries[1] = root.entries[0];
  const Status st = CheckMbrqtInvariants(tree);
  ExpectViolation(st, "invariant violated");
}

TEST(CheckMbrqtTest, DetectsObjectCountDrift) {
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(RandomDataset(3, 200, 15)));
  MemTree tree = qt.Finalize();
  tree.num_objects += 1;
  ExpectViolation(CheckMbrqtInvariants(tree), "advertises");
}

// ---------------------------------------------------------------------------
// R*-tree / MemTree

TEST(CheckRstarTest, CleanTreePasses) {
  Dataset r, s;
  Fig3aWorkload(&r, &s);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  EXPECT_OK(CheckRstarInvariants(tree.tree()));
}

TEST(CheckRstarTest, CleanInsertBuiltTreePasses) {
  const Dataset data = RandomDataset(2, 400, 21);
  RStarTree tree(2);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  EXPECT_OK(CheckRstarInvariants(tree.tree()));
}

TEST(CheckRstarTest, DetectsEntryChildMbrMismatch) {
  ASSERT_OK_AND_ASSIGN(const RStarTree tree,
                       RStarTree::BulkLoadStr(RandomDataset(2, 400, 22)));
  MemTree corrupt = tree.tree();
  MemNode& root = corrupt.nodes[corrupt.root];
  ASSERT_FALSE(root.is_leaf);
  // Shrink the child node's MBR out from under its parent entry.
  corrupt.nodes[root.entries[0].child].mbr.hi[0] -= 0.5;
  ExpectViolation(CheckRstarInvariants(corrupt), "MBR != child node");
}

TEST(CheckRstarTest, DetectsNonUniformLeafDepth) {
  ASSERT_OK_AND_ASSIGN(const RStarTree tree,
                       RStarTree::BulkLoadStr(RandomDataset(2, 800, 23)));
  MemTree corrupt = tree.tree();
  ASSERT_GT(corrupt.height, 1) << "need a multi-level tree for this test";
  // Replace an internal entry's subtree with a direct leaf: that leaf now
  // sits above the others. Splice the leaf's MBR into the entry so the
  // depth check (not a tightness check) is what fires.
  MemNode& root = corrupt.nodes[corrupt.root];
  int32_t leaf = -1;
  for (size_t i = 0; i < corrupt.nodes.size(); ++i) {
    if (corrupt.nodes[i].is_leaf) {
      leaf = static_cast<int32_t>(i);
      break;
    }
  }
  ASSERT_GE(leaf, 0);
  // Force two entries whose subtrees have different leaf depths under one
  // parent: point entry 0 at the leaf directly (keeping its MBR honest by
  // rewriting the entry MBR, node MBR and sibling union consistently is
  // exactly what real corruption would not do — the checker must flag the
  // first inconsistency it meets, which is the depth or MBR drift).
  root.entries[0].child = leaf;
  root.entries[0].mbr = corrupt.nodes[leaf].mbr;
  const Status st = CheckRstarInvariants(corrupt);
  ExpectViolation(st, "invariant violated");
}

// ---------------------------------------------------------------------------
// Generic SpatialIndex walk

TEST(CheckIndexTest, CleanViewsPass) {
  Dataset r, s;
  Fig3aWorkload(&r, &s);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(const RStarTree rt, RStarTree::BulkLoadStr(s));
  EXPECT_OK(CheckIndexInvariants(MemIndexView(&qt.Finalize())));
  EXPECT_OK(CheckIndexInvariants(MemIndexView(&rt.tree())));
}

TEST(CheckIndexTest, DetectsEscapedChild) {
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(RandomDataset(2, 300, 31)));
  MemTree tree = qt.Finalize();
  // Move a leaf point outside every ancestor MBR; the interface walk can
  // only see containment, so that is what must fire.
  for (auto& node : tree.nodes) {
    if (!node.is_leaf || node.entries.empty()) continue;
    node.entries[0].mbr.lo[0] += 7.0;
    node.entries[0].mbr.hi[0] += 7.0;
    break;
  }
  ExpectViolation(CheckIndexInvariants(MemIndexView(&tree)),
                  "escapes parent");
}

// ---------------------------------------------------------------------------
// LPQ

LpqEntry MakeEntry(Scalar mind2, Scalar maxd2, uint64_t id) {
  LpqEntry e;
  Scalar p[2] = {0, 0};
  e.entry = IndexEntry::Object(p, 2, id);
  e.mind2 = mind2;
  e.maxd2 = maxd2;
  return e;
}

TEST(CheckLpqTest, CleanQueuePasses) {
  Scalar p[2] = {0.5, 0.5};
  for (const int k : {1, 3}) {
    Lpq lpq(IndexEntry::Object(p, 2, 0), kInf, k);
    PruneStats stats;
    for (int i = 0; i < 16; ++i) {
      lpq.Enqueue(MakeEntry(0.1 * i, 0.1 * i + 0.5, i), &stats);
    }
    ASSERT_OK(CheckLpqInvariants(lpq));
    LpqEntry out;
    ASSERT_TRUE(lpq.Dequeue(&out));
    lpq.Commit(out, &stats);
    EXPECT_OK(CheckLpqInvariants(lpq));
  }
}

TEST(CheckLpqTest, DetectsBoundTightenedPastQueuedEntries) {
  Scalar p[2] = {0.5, 0.5};
  Lpq lpq(IndexEntry::Object(p, 2, 0), kInf, 1);
  PruneStats stats;
  for (int i = 0; i < 8; ++i) {
    lpq.Enqueue(MakeEntry(1.0 + 0.1 * i, 9.0, i), &stats);
  }
  ASSERT_OK(CheckLpqInvariants(lpq));
  // A bound below every queued MIND means those entries should have been
  // evicted by the Filter stage — a classic missed-eviction corruption.
  LpqTestPeer::SetBound2(&lpq, 0.5);
  ExpectViolation(CheckLpqInvariants(lpq), "exceeds pruning bound");
}

TEST(CheckLpqTest, DetectsLoosenedBound) {
  Scalar p[2] = {0.5, 0.5};
  Lpq lpq(IndexEntry::Object(p, 2, 0), kInf, 1);
  PruneStats stats;
  for (int i = 0; i < 8; ++i) {
    lpq.Enqueue(MakeEntry(0.1 * i, 2.0 + 0.1 * i, i), &stats);
  }
  ASSERT_OK(CheckLpqInvariants(lpq));
  // A bound above the smallest queued MAXD violates the monotone
  // tightening discipline of Lemma 3.2 (the bound never loosens).
  LpqTestPeer::SetBound2(&lpq, 100.0);
  ExpectViolation(CheckLpqInvariants(lpq), "looser than queued MAXD");
}

TEST(CheckLpqTest, DetectsBrokenSortOrder) {
  Scalar p[2] = {0.5, 0.5};
  Lpq lpq(IndexEntry::Object(p, 2, 0), kInf, 2);
  PruneStats stats;
  for (int i = 0; i < 8; ++i) {
    lpq.Enqueue(MakeEntry(0.2 * i, 3.0 + 0.2 * i, i), &stats);
  }
  ASSERT_OK(CheckLpqInvariants(lpq));
  LpqTestPeer::SwapOrderKeys(&lpq, 1, 5);
  ExpectViolation(CheckLpqInvariants(lpq), "not sorted");
}

// ---------------------------------------------------------------------------
// Buffer pool

TEST(CheckBufferPoolTest, CleanPoolPasses) {
  for (const size_t stripes : {size_t{1}, size_t{4}}) {
    MemDiskManager disk;
    BufferPool pool(&disk, 16, Replacement::kLru, stripes);
    Rng rng(99);
    std::vector<PageId> pages;
    for (int i = 0; i < 64; ++i) {
      ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
      const uint64_t stamp = rng.Next();
      std::memcpy(page.data(), &stamp, sizeof(stamp));
      page.MarkDirty();
      pages.push_back(page.page_id());
    }
    for (int i = 0; i < 200; ++i) {
      ASSERT_OK_AND_ASSIGN(PinnedPage page,
                           pool.Fetch(pages[rng.UniformInt(pages.size())]));
      EXPECT_OK(CheckBufferPoolInvariants(pool));  // valid while pinned too
    }
    EXPECT_OK(CheckBufferPoolInvariants(pool));
  }
}

TEST(CheckBufferPoolTest, DetectsPinnedFrameOnLruList) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    page.MarkDirty();
  }
  ASSERT_OK(CheckBufferPoolInvariants(pool));
  ASSERT_TRUE(BufferPoolTestPeer::CorruptLruPinCount(&pool));
  ExpectViolation(CheckBufferPoolInvariants(pool),
                  "sits on the LRU list and is evictable");
}

TEST(CheckBufferPoolTest, DetectsPageTableFrameMismatch) {
  MemDiskManager disk;
  BufferPool pool(&disk, 8, Replacement::kClock, 2);
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    page.MarkDirty();
  }
  ASSERT_OK(CheckBufferPoolInvariants(pool));
  ASSERT_TRUE(BufferPoolTestPeer::CorruptPageTable(&pool));
  ExpectViolation(CheckBufferPoolInvariants(pool), "holding page");
}

// ---------------------------------------------------------------------------
// paranoid_checks end-to-end (Figure 3a workload, 1 and 8 threads)

class ParanoidEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(ParanoidEngineTest, Fig3aWorkloadRunsGreen) {
  Dataset r, s;
  Fig3aWorkload(&r, &s);
  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s, /*k=*/2, &want));

  AnnOptions opts;
  opts.k = 2;
  opts.paranoid_checks = true;
  opts.num_threads = GetParam();

  // MBA over MBRQTs and RBA over R*-trees, both fully checked.
  {
    ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
    ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
    const MemIndexView ir(&qr.Finalize());
    const MemIndexView is(&qs.Finalize());
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
  {
    ASSERT_OK_AND_ASSIGN(const RStarTree tr, RStarTree::BulkLoadStr(r));
    ASSERT_OK_AND_ASSIGN(const RStarTree ts, RStarTree::BulkLoadStr(s));
    const MemIndexView ir(&tr.tree());
    const MemIndexView is(&ts.tree());
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParanoidEngineTest, ::testing::Values(1, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ParanoidEngineTest, CorruptIndexIsRejectedBeforeTraversal) {
  const Dataset r = RandomDataset(2, 600, 41);
  const Dataset s = RandomDataset(2, 600, 42);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  MemTree corrupt = qs.Finalize();
  for (auto& node : corrupt.nodes) {
    if (!node.is_leaf || node.entries.empty()) continue;
    node.entries[0].mbr.lo[0] += 7.0;
    node.entries[0].mbr.hi[0] += 7.0;
    break;
  }
  AnnOptions opts;
  opts.paranoid_checks = true;
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&corrupt);
  std::vector<NeighborList> got;
  const Status st = AllNearestNeighbors(ir, is, opts, &got);
  ExpectViolation(st, "escapes parent");
  EXPECT_TRUE(got.empty()) << "no results may be emitted for a bad index";
}

// ---------------------------------------------------------------------------
// ANNLIB_DCHECK plumbing

TEST(DcheckTest, MacrosCompileAndPassInEveryConfig) {
  const int x = 3;
  ANNLIB_DCHECK(x == 3);
  ANNLIB_DCHECK_EQ(x, 3);
  ANNLIB_DCHECK_NE(x, 4);
  ANNLIB_DCHECK_LT(x, 4);
  ANNLIB_DCHECK_LE(x, 3);
  ANNLIB_DCHECK_GT(x, 2);
  ANNLIB_DCHECK_GE(x, 3);
}

#if ANNLIB_DCHECK_IS_ON
TEST(DcheckTest, FailureAborts) {
  EXPECT_DEATH(ANNLIB_DCHECK_EQ(1 + 1, 3), "ANNLIB_DCHECK failed");
}
#endif

}  // namespace
}  // namespace ann
