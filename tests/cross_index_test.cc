// Cross-index consistency: the same engine must produce validated-exact
// results over every index structure the library offers, in memory and
// through the paged storage path, for ANN, AkNN and bounded queries.

#include <gtest/gtest.h>

#include <memory>

#include "ann/distance_join.h"
#include "ann/mba.h"
#include "ann/validate.h"
#include "datagen/gstd.h"
#include "index/grid/grid_index.h"
#include "index/kdtree/kdtree.h"
#include "index/mbrqt/mbrqt.h"
#include "index/paged_index_view.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

enum class Kind { kMbrqt, kKdTree, kRstarInsert, kRstarBulk, kGrid };

const char* Name(Kind k) {
  switch (k) {
    case Kind::kMbrqt:
      return "Mbrqt";
    case Kind::kKdTree:
      return "KdTree";
    case Kind::kRstarInsert:
      return "RstarInsert";
    case Kind::kRstarBulk:
      return "RstarBulk";
    case Kind::kGrid:
      return "Grid";
  }
  return "?";
}

/// Builds an index of the requested kind; the MemTree is copied into the
/// holder so every builder type can be treated uniformly.
struct Built {
  MemTree tree;
};

Built BuildTree(Kind kind, const Dataset& data) {
  Built out;
  switch (kind) {
    case Kind::kMbrqt: {
      MbrqtOptions opts;
      opts.bucket_capacity = 16;
      auto qt = Mbrqt::Build(data, opts);
      EXPECT_TRUE(qt.ok());
      out.tree = qt->Finalize();
      break;
    }
    case Kind::kKdTree: {
      KdTreeOptions opts;
      opts.bucket_capacity = 16;
      auto kt = KdTree::Build(data, opts);
      EXPECT_TRUE(kt.ok());
      out.tree = kt->tree();
      break;
    }
    case Kind::kRstarInsert: {
      RStarOptions opts;
      opts.leaf_capacity = 16;
      opts.internal_capacity = 8;
      RStarTree rt(data.dim(), opts);
      for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_TRUE(rt.Insert(data.point(i), i).ok());
      }
      out.tree = rt.tree();
      break;
    }
    case Kind::kRstarBulk: {
      RStarOptions opts;
      opts.leaf_capacity = 16;
      opts.internal_capacity = 8;
      auto rt = RStarTree::BulkLoadStr(data, opts);
      EXPECT_TRUE(rt.ok());
      out.tree = rt->tree();
      break;
    }
    case Kind::kGrid: {
      GridIndexOptions opts;
      opts.target_per_cell = 16;
      auto grid = GridIndex::Build(data, opts);
      EXPECT_TRUE(grid.ok());
      out.tree = grid->tree();
      break;
    }
  }
  return out;
}

class CrossIndexTest : public ::testing::TestWithParam<Kind> {};

TEST_P(CrossIndexTest, MemoryAndPagedPathsValidatedExact) {
  const Kind kind = GetParam();
  GstdSpec spec;
  spec.dim = 3;
  spec.count = 1200;
  spec.distribution = Distribution::kClustered;
  spec.seed = 77;
  auto all = GenerateGstd(spec);
  ASSERT_TRUE(all.ok());
  Dataset r, s;
  SplitHalves(*all, &r, &s);

  const Built br = BuildTree(kind, r);
  const Built bs = BuildTree(kind, s);
  const MemIndexView ir(&br.tree);
  const MemIndexView is(&bs.tree);

  // In-memory ANN and AkNN.
  for (const int k : {1, 6}) {
    AnnOptions opts;
    opts.k = k;
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
    ASSERT_OK(ValidateAknnResults(r, s, k, got));
  }
  // Bounded query.
  {
    AnnOptions opts;
    opts.max_distance = 0.05;
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
    ASSERT_OK(ValidateAknnResults(r, s, 1, got, opts.max_distance));
  }

  // Paged path under a small pool.
  MemDiskManager disk;
  BufferPool pool(&disk, 16);
  NodeStore store(&pool);
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta mr,
                       PersistMemTree(br.tree, &store));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta ms,
                       PersistMemTree(bs.tree, &store));
  const PagedIndexView pr(&store, mr);
  const PagedIndexView ps(&store, ms);
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(pr, ps, AnnOptions{}, &got));
  ASSERT_OK(ValidateAknnResults(r, s, 1, got));

  // Distance join agrees across the same persisted indexes.
  std::vector<JoinPair> pairs;
  ASSERT_OK(DistanceJoin(pr, ps, 0.03, &pairs));
  for (const JoinPair& p : pairs) {
    EXPECT_LE(p.dist, 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrossIndexTest,
                         ::testing::Values(Kind::kMbrqt, Kind::kKdTree,
                                           Kind::kRstarInsert,
                                           Kind::kRstarBulk, Kind::kGrid),
                         [](const auto& info) { return Name(info.param); });

}  // namespace
}  // namespace ann
