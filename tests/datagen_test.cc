#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/linalg.h"
#include "index/mbrqt/mbrqt.h"
#include "datagen/gstd.h"
#include "datagen/real_sim.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(GstdTest, UniformCoversTheUnitCube) {
  GstdSpec spec;
  spec.dim = 3;
  spec.count = 20000;
  spec.seed = 1;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  ASSERT_EQ(data.size(), spec.count);
  const Rect box = data.BoundingBox();
  for (int d = 0; d < 3; ++d) {
    EXPECT_GE(box.lo[d], 0.0);
    EXPECT_LE(box.hi[d], 1.0);
    EXPECT_LT(box.lo[d], 0.01);  // corners are reached
    EXPECT_GT(box.hi[d], 0.99);
  }
  // Roughly uniform: each octant holds ~1/8 of the mass.
  int counts[8] = {0};
  for (size_t i = 0; i < data.size(); ++i) {
    int oct = 0;
    for (int d = 0; d < 3; ++d) {
      if (data.point(i)[d] >= 0.5) oct |= 1 << d;
    }
    ++counts[oct];
  }
  for (int o = 0; o < 8; ++o) {
    EXPECT_NEAR(counts[o], spec.count / 8.0, spec.count * 0.02);
  }
}

TEST(GstdTest, DeterministicForSameSeed) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 100;
  spec.distribution = Distribution::kClustered;
  spec.seed = 42;
  ASSERT_OK_AND_ASSIGN(const Dataset a, GenerateGstd(spec));
  ASSERT_OK_AND_ASSIGN(const Dataset b, GenerateGstd(spec));
  EXPECT_EQ(a.coords(), b.coords());
  spec.seed = 43;
  ASSERT_OK_AND_ASSIGN(const Dataset c, GenerateGstd(spec));
  EXPECT_NE(a.coords(), c.coords());
}

TEST(GstdTest, ClusteredIsDenserThanUniform) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 10000;
  spec.seed = 2;
  spec.distribution = Distribution::kClustered;
  spec.clusters = 8;
  spec.cluster_sigma = 0.01;
  ASSERT_OK_AND_ASSIGN(const Dataset clustered, GenerateGstd(spec));
  spec.distribution = Distribution::kUniform;
  ASSERT_OK_AND_ASSIGN(const Dataset uniform, GenerateGstd(spec));

  // Average NN distance is far smaller for clustered data.
  const auto avg_nn = [](const Dataset& d) {
    Scalar total = 0;
    const size_t probe = 300;
    for (size_t i = 0; i < probe; ++i) {
      Scalar best = kInf;
      for (size_t j = 0; j < d.size(); ++j) {
        if (j == i) continue;
        best = std::min(best, PointDist2(d.point(i), d.point(j), 2));
      }
      total += std::sqrt(best);
    }
    return total / probe;
  };
  EXPECT_LT(avg_nn(clustered), avg_nn(uniform) / 2);
}

TEST(GstdTest, ZipfMassNearOrigin) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 10000;
  spec.seed = 3;
  spec.distribution = Distribution::kZipfSkewed;
  spec.zipf_theta = 1.0;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  size_t near_origin = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.point(i)[0] < 0.25 && data.point(i)[1] < 0.25) ++near_origin;
  }
  EXPECT_GT(near_origin, data.size() / 4);
}

TEST(GstdTest, SegmentsConcentrateOnLines) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 8000;
  spec.distribution = Distribution::kSegments;
  spec.segments = 5;
  spec.seed = 12;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  ASSERT_EQ(data.size(), spec.count);
  // Points lie near 1-D structures: an MBRQT over them should have far
  // smaller total leaf MBR area than one over uniform data.
  const auto leaf_area = [](const Dataset& d) {
    auto qt = Mbrqt::Build(d);
    EXPECT_TRUE(qt.ok());
    const MemTree& tree = qt->Finalize();
    Scalar area = 0;
    for (const MemNode& node : tree.nodes) {
      if (node.is_leaf) area += node.mbr.Area();
    }
    return area;
  };
  spec.distribution = Distribution::kUniform;
  ASSERT_OK_AND_ASSIGN(const Dataset uniform, GenerateGstd(spec));
  EXPECT_LT(leaf_area(data), leaf_area(uniform) / 3);
}

TEST(GstdTest, GridQuantizedHasManyNearDuplicates) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 5000;
  spec.distribution = Distribution::kGridQuantized;
  spec.lattice = 8;  // only 64 cells for 5000 points
  spec.seed = 13;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  // Nearly every point has a neighbor within the jitter scale.
  size_t close = 0;
  const size_t probes = 200;
  for (size_t i = 0; i < probes; ++i) {
    Scalar best = kInf;
    for (size_t j = 0; j < data.size(); ++j) {
      if (j == i) continue;
      best = std::min(best, PointDist2(data.point(i), data.point(j), 2));
    }
    if (best < 1e-6) ++close;
  }
  EXPECT_GT(close, probes * 9 / 10);
}

TEST(GstdTest, RejectsBadDim) {
  GstdSpec spec;
  spec.dim = 0;
  EXPECT_FALSE(GenerateGstd(spec).ok());
  spec.dim = kMaxDim + 1;
  EXPECT_FALSE(GenerateGstd(spec).ok());
}

TEST(GstdStreamingTest, FileRoundTripIsBitIdenticalForEveryDistribution) {
  const Distribution kAll[] = {
      Distribution::kUniform,    Distribution::kGaussian,
      Distribution::kClustered,  Distribution::kZipfSkewed,
      Distribution::kSegments,   Distribution::kGridQuantized,
  };
  for (const Distribution dist : kAll) {
    GstdSpec spec;
    spec.dim = 3;
    spec.count = 257;  // not a multiple of the chunk size below
    spec.seed = 99;
    spec.distribution = dist;
    ASSERT_OK_AND_ASSIGN(const Dataset mem, GenerateGstd(spec));
    const std::string path = ::testing::TempDir() + "/gstd_roundtrip.f64";
    // chunk_rows = 7 forces many partial flushes plus a final remainder.
    ASSERT_OK(GenerateGstdToFile(spec, path, /*chunk_rows=*/7));
    ASSERT_OK_AND_ASSIGN(const Dataset disk, ReadPointsFile(path, spec.dim));
    ASSERT_EQ(disk.size(), mem.size());
    EXPECT_EQ(disk.coords(), mem.coords())
        << "distribution " << static_cast<int>(dist);
    std::remove(path.c_str());
  }
}

TEST(GstdStreamingTest, RowSinkErrorAbortsGeneration) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 1000;
  size_t seen = 0;
  const Status s = GenerateGstdRows(spec, [&seen](const Scalar*) {
    if (++seen == 10) return Status::IOError("sink full");
    return Status::OK();
  });
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_EQ(seen, 10u);
}

TEST(GstdStreamingTest, TruncatedFileIsAnIOError) {
  GstdSpec spec;
  spec.dim = 4;
  spec.count = 32;
  const std::string path = ::testing::TempDir() + "/gstd_truncated.f64";
  ASSERT_OK(GenerateGstdToFile(spec, path));
  // Chop the file mid-row: the size is no longer a whole number of rows.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long bytes = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), bytes - 3), 0);
  const Result<Dataset> r = ReadPointsFile(path, spec.dim);
  EXPECT_TRUE(r.status().IsIOError()) << r.status().ToString();
  // A whole-row size read with the wrong dim also fails loudly rather
  // than returning silently reinterpreted garbage.
  const Result<Dataset> wrong_dim = ReadPointsFile(path, 7);
  EXPECT_FALSE(wrong_dim.ok());
  std::remove(path.c_str());
}

TEST(GstdStreamingTest, MissingFileAndBadDimAreRejected) {
  EXPECT_FALSE(ReadPointsFile("/nonexistent/gstd.f64", 2).ok());
  EXPECT_FALSE(ReadPointsFile("/tmp", 0).ok());
  GstdSpec spec;
  spec.dim = 0;
  EXPECT_FALSE(GenerateGstdToFile(spec, "/tmp/never_created.f64").ok());
}

TEST(GstdTest, SplitHalvesIsDisjointAndComplete) {
  const Dataset data = RandomDataset(2, 101, 4);
  Dataset r, s;
  SplitHalves(data, &r, &s);
  EXPECT_EQ(r.size(), 51u);
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(r.point(0)[0], data.point(0)[0]);
  EXPECT_EQ(s.point(0)[0], data.point(1)[0]);
}

TEST(TacLikeTest, ShapeAndSkyBounds) {
  ASSERT_OK_AND_ASSIGN(const Dataset tac, MakeTacLike(50000));
  ASSERT_EQ(tac.size(), 50000u);
  ASSERT_EQ(tac.dim(), 2);
  for (size_t i = 0; i < tac.size(); ++i) {
    EXPECT_GE(tac.point(i)[0], 0.0);
    EXPECT_LT(tac.point(i)[0], 360.0);
    EXPECT_GE(tac.point(i)[1], -90.0);
    EXPECT_LE(tac.point(i)[1], 90.0);
  }
}

TEST(TacLikeTest, IsClusteredLikeACatalog) {
  ASSERT_OK_AND_ASSIGN(const Dataset tac, MakeTacLike(20000));
  // Compare NN distances against a uniform scatter of the same size over
  // the same region: the catalog must be substantially denser locally.
  Rng rng(5);
  Dataset uniform(2);
  for (size_t i = 0; i < tac.size(); ++i) {
    const Scalar p[2] = {rng.Uniform(0, 360),
                         std::asin(rng.Uniform(-1, 1)) * 180.0 / M_PI};
    uniform.Append(p);
  }
  const auto avg_nn = [](const Dataset& d) {
    Scalar total = 0;
    const size_t probe = 200;
    for (size_t i = 0; i < probe; ++i) {
      Scalar best = kInf;
      for (size_t j = 0; j < d.size(); ++j) {
        if (j == i) continue;
        best = std::min(best, PointDist2(d.point(i), d.point(j), 2));
      }
      total += std::sqrt(best);
    }
    return total / probe;
  };
  EXPECT_LT(avg_nn(tac), avg_nn(uniform));
}

TEST(ForestCoverLikeTest, ShapeAndNormalization) {
  ASSERT_OK_AND_ASSIGN(const Dataset fc, MakeForestCoverLike(20000));
  ASSERT_EQ(fc.size(), 20000u);
  ASSERT_EQ(fc.dim(), 10);
  const Rect box = fc.BoundingBox();
  for (int d = 0; d < 10; ++d) {
    EXPECT_NEAR(box.lo[d], 0.0, 1e-12);
    EXPECT_NEAR(box.hi[d], 1.0, 1e-12);
  }
}

TEST(ForestCoverLikeTest, AttributesAreCorrelated) {
  // The latent-factor construction must produce a covariance spectrum with
  // a few dominant directions (low intrinsic dimensionality), which is
  // what makes PCA/GORDER meaningful on this dataset.
  ASSERT_OK_AND_ASSIGN(const Dataset fc, MakeForestCoverLike(20000));
  ASSERT_OK_AND_ASSIGN(const EigenDecomposition eig,
                       SymmetricEigen(Covariance(fc)));
  Scalar top3 = 0, total = 0;
  for (int i = 0; i < 10; ++i) {
    total += eig.values[i];
    if (i < 3) top3 += eig.values[i];
  }
  EXPECT_GT(top3 / total, 0.7);
}

TEST(NormalizePerAttributeTest, HandlesConstantAttributes) {
  Dataset d(2);
  const Scalar p1[2] = {5, 1}, p2[2] = {5, 3};
  d.Append(p1);
  d.Append(p2);
  NormalizePerAttribute(&d);
  EXPECT_EQ(d.point(0)[0], 0.5);  // constant column maps to 0.5
  EXPECT_EQ(d.point(1)[0], 0.5);
  EXPECT_EQ(d.point(0)[1], 0.0);
  EXPECT_EQ(d.point(1)[1], 1.0);
}

}  // namespace
}  // namespace ann
