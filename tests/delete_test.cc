// Deletion tests for both dynamic indexes: structural invariants hold
// after arbitrary delete/insert interleavings, and queries stay exact.

#include <gtest/gtest.h>

#include <algorithm>

#include "ann/mba.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(RStarDeleteTest, DeleteEverythingInRandomOrder) {
  const Dataset data = RandomDataset(2, 1200, 1);
  RStarOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  RStarTree tree(2, opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  Rng rng(2);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i-- > 1;) {
    std::swap(order[i], order[rng.UniformInt(i + 1)]);
  }
  for (size_t step = 0; step < order.size(); ++step) {
    ASSERT_OK(tree.Delete(data.point(order[step]), order[step]));
    if (step % 100 == 0) {
      ASSERT_OK(tree.CheckInvariants());
    }
  }
  EXPECT_EQ(tree.num_objects(), 0u);
  EXPECT_EQ(tree.height(), 1);
}

TEST(RStarDeleteTest, DeleteMissingEntryFails) {
  const Dataset data = RandomDataset(2, 100, 3);
  RStarTree tree(2);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  const Scalar nowhere[2] = {5.0, 5.0};
  EXPECT_TRUE(tree.Delete(nowhere, 0).IsNotFound());
  // Right point, wrong id.
  EXPECT_TRUE(tree.Delete(data.point(4), 999).IsNotFound());
  // Deleting twice fails the second time.
  ASSERT_OK(tree.Delete(data.point(4), 4));
  EXPECT_TRUE(tree.Delete(data.point(4), 4).IsNotFound());
}

TEST(RStarDeleteTest, QueriesStayExactUnderChurn) {
  Rng rng(4);
  const Dataset pool_data = RandomDataset(2, 2000, 5);
  RStarOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  RStarTree tree(2, opts);
  std::vector<bool> present(pool_data.size(), false);
  // Interleave inserts and deletes.
  for (int step = 0; step < 5000; ++step) {
    const size_t i = rng.UniformInt(pool_data.size());
    if (present[i]) {
      ASSERT_OK(tree.Delete(pool_data.point(i), i));
      present[i] = false;
    } else {
      ASSERT_OK(tree.Insert(pool_data.point(i), i));
      present[i] = true;
    }
  }
  ASSERT_OK(tree.CheckInvariants());

  // Range queries over the live set must be exact.
  const MemIndexView view(&tree.tree());
  for (int q = 0; q < 10; ++q) {
    const Rect range = RandomRect(2, &rng);
    std::vector<uint64_t> got;
    ASSERT_OK(RangeQuery(view, range, &got));
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (size_t i = 0; i < pool_data.size(); ++i) {
      if (present[i] && range.ContainsPoint(pool_data.point(i))) {
        want.push_back(i);
      }
    }
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(RStarDeleteTest, DuplicatePointsDeleteById) {
  RStarOptions opts;
  opts.leaf_capacity = 4;
  opts.internal_capacity = 4;
  RStarTree tree(2, opts);
  const Scalar p[2] = {0.3, 0.7};
  for (int i = 0; i < 50; ++i) ASSERT_OK(tree.Insert(p, i));
  for (int i = 0; i < 50; i += 2) ASSERT_OK(tree.Delete(p, i));
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.num_objects(), 25u);
  EXPECT_TRUE(tree.Delete(p, 0).IsNotFound());
}

TEST(MbrqtDeleteTest, DeleteEverythingInRandomOrder) {
  const Dataset data = RandomDataset(2, 1500, 6);
  MbrqtOptions opts;
  opts.bucket_capacity = 8;
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  Rng rng(7);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i-- > 1;) {
    std::swap(order[i], order[rng.UniformInt(i + 1)]);
  }
  for (size_t step = 0; step < order.size(); ++step) {
    ASSERT_OK(qt.Delete(data.point(order[step]), order[step]));
    if (step % 150 == 0) {
      ASSERT_OK(qt.CheckInvariants());
    }
  }
  EXPECT_EQ(qt.num_objects(), 0u);
}

TEST(MbrqtDeleteTest, DeleteMissingEntryFails) {
  const Dataset data = RandomDataset(2, 200, 8);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
  const Scalar outside[2] = {99, 99};
  EXPECT_TRUE(qt.Delete(outside, 0).IsNotFound());
  EXPECT_TRUE(qt.Delete(data.point(3), 999).IsNotFound());
  ASSERT_OK(qt.Delete(data.point(3), 3));
  EXPECT_TRUE(qt.Delete(data.point(3), 3).IsNotFound());
}

TEST(MbrqtDeleteTest, AnnStaysExactAfterDeletes) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 2000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 9;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  MbrqtOptions opts;
  opts.bucket_capacity = 16;
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r, opts));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s, opts));

  // Remove every third target; rebuild the expected answer set.
  Dataset s_remaining(2);
  std::vector<uint64_t> remaining_ids;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_OK(qs.Delete(s.point(i), i));
    } else {
      s_remaining.Append(s.point(i));
      remaining_ids.push_back(i);
    }
  }
  ASSERT_OK(qs.CheckInvariants());

  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
  SortByQueryId(&got);

  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s_remaining, 1, &want));
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].neighbors.size(), 1u);
    EXPECT_NEAR(got[i].neighbors[0].second, want[i].neighbors[0].second,
                1e-9);
    // The returned id must be one of the remaining targets.
    EXPECT_NE(std::find(remaining_ids.begin(), remaining_ids.end(),
                        got[i].neighbors[0].first),
              remaining_ids.end());
  }
}

TEST(MbrqtDeleteTest, ReinsertAfterDeleteWorks) {
  const Dataset data = RandomDataset(3, 500, 10);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
  for (size_t i = 0; i < 250; ++i) {
    ASSERT_OK(qt.Delete(data.point(i), i));
  }
  for (size_t i = 0; i < 250; ++i) {
    ASSERT_OK(qt.Insert(data.point(i), i));
  }
  ASSERT_OK(qt.CheckInvariants());
  EXPECT_EQ(qt.num_objects(), data.size());
  const MemIndexView view(&qt.Finalize());
  std::vector<uint64_t> got;
  ASSERT_OK(RangeQuery(view, data.BoundingBox(), &got));
  EXPECT_EQ(got.size(), data.size());
}

}  // namespace
}  // namespace ann
