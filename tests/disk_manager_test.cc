#include "storage/disk_manager.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "test_util.h"

namespace ann {
namespace {

void FillPattern(Page* page, char seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    page->data()[i] = static_cast<char>(seed + i % 251);
  }
}

template <typename T>
class DiskManagerTest : public ::testing::Test {
 public:
  std::unique_ptr<DiskManager> Make() {
    if constexpr (std::is_same_v<T, MemDiskManager>) {
      return std::make_unique<MemDiskManager>();
    } else if constexpr (std::is_same_v<T, MmapDiskManager>) {
      // Tiny segments so the typed tests cross a growth boundary.
      MmapDiskManager::Options opt;
      opt.segment_pages = 2;
      auto res = MmapDiskManager::Create(
          ::testing::TempDir() + "/disk_manager_test_mmap.pages", opt);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      return std::move(res).value();
    } else {
      auto res = FileDiskManager::Create(
          ::testing::TempDir() + "/disk_manager_test.pages");
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      return std::move(res).value();
    }
  }
};

using Impls =
    ::testing::Types<MemDiskManager, FileDiskManager, MmapDiskManager>;
TYPED_TEST_SUITE(DiskManagerTest, Impls);

TYPED_TEST(DiskManagerTest, AllocateReadWriteRoundtrip) {
  auto disk = this->Make();
  ASSERT_OK_AND_ASSIGN(const PageId a, disk->AllocatePage());
  ASSERT_OK_AND_ASSIGN(const PageId b, disk->AllocatePage());
  EXPECT_NE(a, b);
  EXPECT_EQ(disk->page_count(), 2u);

  Page w;
  FillPattern(&w, 3);
  ASSERT_OK(disk->WritePage(a, w));
  Page w2;
  FillPattern(&w2, 9);
  ASSERT_OK(disk->WritePage(b, w2));

  Page r;
  ASSERT_OK(disk->ReadPage(a, &r));
  EXPECT_EQ(std::memcmp(r.data(), w.data(), kPageSize), 0);
  ASSERT_OK(disk->ReadPage(b, &r));
  EXPECT_EQ(std::memcmp(r.data(), w2.data(), kPageSize), 0);
}

TYPED_TEST(DiskManagerTest, FreshPagesAreZeroed) {
  auto disk = this->Make();
  ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
  Page r;
  FillPattern(&r, 1);
  ASSERT_OK(disk->ReadPage(id, &r));
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(r.data()[i], 0);
}

TYPED_TEST(DiskManagerTest, OutOfRangeAccessFails) {
  auto disk = this->Make();
  Page p;
  EXPECT_TRUE(disk->ReadPage(0, &p).IsOutOfRange());
  EXPECT_TRUE(disk->WritePage(5, p).IsOutOfRange());
}

TYPED_TEST(DiskManagerTest, StatsCountPhysicalIo) {
  auto disk = this->Make();
  ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
  Page p;
  ASSERT_OK(disk->ReadPage(id, &p));
  ASSERT_OK(disk->ReadPage(id, &p));
  ASSERT_OK(disk->WritePage(id, p));
  EXPECT_EQ(disk->stats().physical_reads, 2u);
  EXPECT_EQ(disk->stats().physical_writes, 1u);
  disk->ResetStats();
  EXPECT_EQ(disk->stats().physical_reads, 0u);
}

TEST(FileDiskManagerTest, CreateFailsOnBadPath) {
  EXPECT_FALSE(FileDiskManager::Create("/nonexistent-dir/x/y/pages").ok());
  EXPECT_FALSE(MmapDiskManager::Create("/nonexistent-dir/x/y/pages").ok());
}

TEST(FileDiskManagerTest, ShortReadAfterExternalTruncation) {
  const std::string path = ::testing::TempDir() + "/short_read.pages";
  ASSERT_OK_AND_ASSIGN(auto disk, FileDiskManager::Create(path));
  Page p;
  FillPattern(&p, 5);
  ASSERT_OK_AND_ASSIGN(const PageId a, disk->AllocatePage());
  ASSERT_OK_AND_ASSIGN(const PageId b, disk->AllocatePage());
  ASSERT_OK(disk->WritePage(a, p));
  ASSERT_OK(disk->WritePage(b, p));
  // Chop the file mid-page behind the manager's back: page b is now only
  // partially present, which must surface as a short-transfer IOError (a
  // distinct message from an errno failure), not as silent partial data.
  ASSERT_EQ(::truncate(path.c_str(), kPageSize + kPageSize / 2), 0);
  Page r;
  ASSERT_OK(disk->ReadPage(a, &r));
  const Status s = disk->ReadPage(b, &r);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("short transfer"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(FileDiskManagerTest, OpenRejectsNonPageMultipleSize) {
  const std::string path = ::testing::TempDir() + "/ragged.pages";
  {
    ASSERT_OK_AND_ASSIGN(auto disk, FileDiskManager::Create(path));
    ASSERT_OK(disk->AllocatePage().status());
  }
  ASSERT_EQ(::truncate(path.c_str(), kPageSize - 17), 0);
  EXPECT_TRUE(FileDiskManager::Open(path).status().IsIOError());
  EXPECT_TRUE(MmapDiskManager::Open(path).status().IsIOError());
  std::remove(path.c_str());
}

TEST(MmapDiskManagerTest, GrowthFailpointsAreAtomicAndRetryable) {
  const std::string path = ::testing::TempDir() + "/failpoint.pages";
  MmapDiskManager::Options opt;
  opt.segment_pages = 2;
  ASSERT_OK_AND_ASSIGN(auto disk, MmapDiskManager::Create(path, opt));
  ASSERT_OK(disk->AllocatePage().status());
  ASSERT_OK(disk->AllocatePage().status());  // segment 0 now full

  // The next allocation needs segment 1; fail its ftruncate.
  disk->SetFailpointForTest(MmapDiskManager::Failpoint::kFtruncate);
  Result<PageId> grow = disk->AllocatePage();
  ASSERT_TRUE(grow.status().IsIOError()) << grow.status().ToString();
  EXPECT_NE(grow.status().ToString().find("ftruncate"), std::string::npos);
  EXPECT_EQ(disk->page_count(), 2u) << "failed growth must not admit pages";

  // Same growth, failing the mmap after a successful ftruncate.
  disk->SetFailpointForTest(MmapDiskManager::Failpoint::kMmap);
  grow = disk->AllocatePage();
  ASSERT_TRUE(grow.status().IsIOError()) << grow.status().ToString();
  EXPECT_NE(grow.status().ToString().find("mmap"), std::string::npos);
  EXPECT_EQ(disk->page_count(), 2u);

  // Failpoints are one-shot: the identical call now succeeds, and the page
  // it returns is usable.
  ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
  EXPECT_EQ(id, 2u);
  Page p;
  FillPattern(&p, 7);
  ASSERT_OK(disk->WritePage(id, p));
  Page r;
  ASSERT_OK(disk->ReadPage(id, &r));
  EXPECT_EQ(std::memcmp(r.data(), p.data(), kPageSize), 0);
  std::remove(path.c_str());
}

TEST(MmapDiskManagerTest, FileInterchangesWithPreadBackend) {
  const std::string path = ::testing::TempDir() + "/interchange.pages";
  MmapDiskManager::Options opt;
  opt.segment_pages = 2;
  // Write 5 pages through mmap (crossing two growth boundaries; the file
  // on disk is padded to 3 segments = 6 pages until close).
  {
    ASSERT_OK_AND_ASSIGN(auto disk, MmapDiskManager::Create(path, opt));
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
      Page p;
      FillPattern(&p, static_cast<char>(i));
      ASSERT_OK(disk->WritePage(id, p));
    }
  }
  // The destructor trims the segment padding, so the pread backend derives
  // the exact page count from the file size.
  {
    ASSERT_OK_AND_ASSIGN(auto disk, FileDiskManager::Open(path));
    ASSERT_EQ(disk->page_count(), 5u);
    for (int i = 0; i < 5; ++i) {
      Page want, got;
      FillPattern(&want, static_cast<char>(i));
      ASSERT_OK(disk->ReadPage(static_cast<PageId>(i), &got));
      EXPECT_EQ(std::memcmp(got.data(), want.data(), kPageSize), 0);
    }
    // Extend through the pread backend...
    ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
    Page p;
    FillPattern(&p, 5);
    ASSERT_OK(disk->WritePage(id, p));
  }
  // ...and read the mix back through mmap.
  {
    ASSERT_OK_AND_ASSIGN(auto disk, MmapDiskManager::Open(path, opt));
    ASSERT_EQ(disk->page_count(), 6u);
    for (int i = 0; i < 6; ++i) {
      Page want, got;
      FillPattern(&want, static_cast<char>(i));
      ASSERT_OK(disk->ReadPage(static_cast<PageId>(i), &got));
      EXPECT_EQ(std::memcmp(got.data(), want.data(), kPageSize), 0);
    }
  }
  std::remove(path.c_str());
}

TEST(StorageBackendTest, ParseAndNameRoundTrip) {
  ASSERT_OK_AND_ASSIGN(const StorageBackend pread,
                       ParseStorageBackend("pread"));
  EXPECT_EQ(pread, StorageBackend::kPread);
  ASSERT_OK_AND_ASSIGN(const StorageBackend mmap, ParseStorageBackend("mmap"));
  EXPECT_EQ(mmap, StorageBackend::kMmap);
  EXPECT_STREQ(StorageBackendName(StorageBackend::kPread), "pread");
  EXPECT_STREQ(StorageBackendName(StorageBackend::kMmap), "mmap");
  EXPECT_TRUE(ParseStorageBackend("o_direct").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStorageBackend("").status().IsInvalidArgument());
}

TEST(StorageBackendTest, FactoryBuildsBothFlavors) {
  for (const StorageBackend backend :
       {StorageBackend::kPread, StorageBackend::kMmap}) {
    const std::string path = ::testing::TempDir() + "/factory.pages";
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<DiskManager> disk,
                         CreateFileBackedDiskManager(backend, path));
    ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
    Page p;
    FillPattern(&p, 11);
    ASSERT_OK(disk->WritePage(id, p));
    Page r;
    ASSERT_OK(disk->ReadPage(id, &r));
    EXPECT_EQ(std::memcmp(r.data(), p.data(), kPageSize), 0);
    disk.reset();
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace ann
