#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>

#include "test_util.h"

namespace ann {
namespace {

void FillPattern(Page* page, char seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    page->data()[i] = static_cast<char>(seed + i % 251);
  }
}

template <typename T>
class DiskManagerTest : public ::testing::Test {
 public:
  std::unique_ptr<DiskManager> Make() {
    if constexpr (std::is_same_v<T, MemDiskManager>) {
      return std::make_unique<MemDiskManager>();
    } else {
      auto res = FileDiskManager::Create(
          ::testing::TempDir() + "/disk_manager_test.pages");
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      return std::move(res).value();
    }
  }
};

using Impls = ::testing::Types<MemDiskManager, FileDiskManager>;
TYPED_TEST_SUITE(DiskManagerTest, Impls);

TYPED_TEST(DiskManagerTest, AllocateReadWriteRoundtrip) {
  auto disk = this->Make();
  ASSERT_OK_AND_ASSIGN(const PageId a, disk->AllocatePage());
  ASSERT_OK_AND_ASSIGN(const PageId b, disk->AllocatePage());
  EXPECT_NE(a, b);
  EXPECT_EQ(disk->page_count(), 2u);

  Page w;
  FillPattern(&w, 3);
  ASSERT_OK(disk->WritePage(a, w));
  Page w2;
  FillPattern(&w2, 9);
  ASSERT_OK(disk->WritePage(b, w2));

  Page r;
  ASSERT_OK(disk->ReadPage(a, &r));
  EXPECT_EQ(std::memcmp(r.data(), w.data(), kPageSize), 0);
  ASSERT_OK(disk->ReadPage(b, &r));
  EXPECT_EQ(std::memcmp(r.data(), w2.data(), kPageSize), 0);
}

TYPED_TEST(DiskManagerTest, FreshPagesAreZeroed) {
  auto disk = this->Make();
  ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
  Page r;
  FillPattern(&r, 1);
  ASSERT_OK(disk->ReadPage(id, &r));
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(r.data()[i], 0);
}

TYPED_TEST(DiskManagerTest, OutOfRangeAccessFails) {
  auto disk = this->Make();
  Page p;
  EXPECT_TRUE(disk->ReadPage(0, &p).IsOutOfRange());
  EXPECT_TRUE(disk->WritePage(5, p).IsOutOfRange());
}

TYPED_TEST(DiskManagerTest, StatsCountPhysicalIo) {
  auto disk = this->Make();
  ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
  Page p;
  ASSERT_OK(disk->ReadPage(id, &p));
  ASSERT_OK(disk->ReadPage(id, &p));
  ASSERT_OK(disk->WritePage(id, p));
  EXPECT_EQ(disk->stats().physical_reads, 2u);
  EXPECT_EQ(disk->stats().physical_writes, 1u);
  disk->ResetStats();
  EXPECT_EQ(disk->stats().physical_reads, 0u);
}

TEST(FileDiskManagerTest, CreateFailsOnBadPath) {
  EXPECT_FALSE(FileDiskManager::Create("/nonexistent-dir/x/y/pages").ok());
}

}  // namespace
}  // namespace ann
