#include "ann/distance_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ann/mba.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<JoinPair> BruteJoin(const Dataset& r, const Dataset& s,
                                Scalar eps) {
  std::vector<JoinPair> out;
  const Scalar eps2 = eps * eps;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      const Scalar d2 = PointDist2(r.point(i), s.point(j), r.dim());
      if (d2 <= eps2) out.push_back({i, j, std::sqrt(d2)});
    }
  }
  return out;
}

void SortPairs(std::vector<JoinPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const JoinPair& a, const JoinPair& b) {
              return std::tie(a.r_id, a.s_id) < std::tie(b.r_id, b.s_id);
            });
}

void ExpectJoinsEqual(std::vector<JoinPair> got, std::vector<JoinPair> want) {
  SortPairs(&got);
  SortPairs(&want);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].r_id, want[i].r_id);
    EXPECT_EQ(got[i].s_id, want[i].s_id);
    EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9);
  }
}

class DistanceJoinTest : public ::testing::TestWithParam<Scalar> {};

TEST_P(DistanceJoinTest, MatchesBruteForceOnMbrqt) {
  const Scalar eps = GetParam();
  const Dataset r = RandomDataset(2, 500, 1);
  const Dataset s = RandomDataset(2, 600, 2);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  std::vector<JoinPair> got;
  JoinStats stats;
  ASSERT_OK(DistanceJoin(ir, is, eps, &got, &stats));
  ExpectJoinsEqual(std::move(got), BruteJoin(r, s, eps));
  if (eps < 0.5) {
    EXPECT_GT(stats.pairs_pruned, 0u);
  }
}

TEST_P(DistanceJoinTest, MatchesBruteForceOnRstar) {
  const Scalar eps = GetParam();
  const Dataset r = RandomDataset(3, 400, 3);
  const Dataset s = RandomDataset(3, 400, 4);
  ASSERT_OK_AND_ASSIGN(const RStarTree tr, RStarTree::BulkLoadStr(r));
  ASSERT_OK_AND_ASSIGN(const RStarTree ts, RStarTree::BulkLoadStr(s));
  const MemIndexView ir(&tr.tree());
  const MemIndexView is(&ts.tree());

  std::vector<JoinPair> got;
  ASSERT_OK(DistanceJoin(ir, is, eps, &got));
  ExpectJoinsEqual(std::move(got), BruteJoin(r, s, eps));
}

INSTANTIATE_TEST_SUITE_P(Radii, DistanceJoinTest,
                         ::testing::Values(0.0, 0.01, 0.05, 0.2, 2.0),
                         [](const auto& info) {
                           std::string s = std::to_string(info.param);
                           std::replace(s.begin(), s.end(), '.', '_');
                           return "eps" + s.substr(0, 4);
                         });

TEST(DistanceJoinTest, ZeroRadiusFindsExactDuplicates) {
  Dataset r(2), s(2);
  const Scalar a[2] = {0.5, 0.5}, b[2] = {0.25, 0.75};
  r.Append(a);
  r.Append(b);
  s.Append(b);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());
  std::vector<JoinPair> got;
  ASSERT_OK(DistanceJoin(ir, is, 0.0, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].r_id, 1u);
  EXPECT_EQ(got[0].s_id, 0u);
  EXPECT_EQ(got[0].dist, 0.0);
}

TEST(DistanceJoinTest, RejectsBadArguments) {
  const Dataset r = RandomDataset(2, 10, 5);
  const Dataset s3 = RandomDataset(3, 10, 6);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s3));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());
  std::vector<JoinPair> got;
  EXPECT_TRUE(DistanceJoin(ir, is, 0.1, &got).IsInvalidArgument());
  EXPECT_TRUE(DistanceJoin(ir, ir, -1, &got).IsInvalidArgument());
}

std::vector<JoinPair> BruteSemiJoin(const Dataset& r, const Dataset& s,
                                    Scalar eps) {
  std::vector<JoinPair> out;
  for (size_t i = 0; i < r.size(); ++i) {
    Scalar best2 = kInf;
    size_t best_j = 0;
    for (size_t j = 0; j < s.size(); ++j) {
      const Scalar d2 = PointDist2(r.point(i), s.point(j), r.dim());
      if (d2 < best2) {
        best2 = d2;
        best_j = j;
      }
    }
    if (best2 <= eps * eps) out.push_back({i, best_j, std::sqrt(best2)});
  }
  return out;
}

class SemiJoinTest : public ::testing::TestWithParam<Scalar> {};

TEST_P(SemiJoinTest, MatchesBruteForce) {
  const Scalar eps = GetParam();
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 1500;
  spec.distribution = Distribution::kClustered;
  spec.seed = 7;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  std::vector<JoinPair> got;
  JoinStats stats;
  ASSERT_OK(DistanceSemiJoin(ir, is, eps, &got, &stats));
  const std::vector<JoinPair> want = BruteSemiJoin(r, s, eps);
  // Distance ties can pick a different but equally-near witness: compare
  // query ids and distances.
  ASSERT_EQ(got.size(), want.size());
  SortPairs(&got);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].r_id, want[i].r_id);
    EXPECT_NEAR(got[i].dist, want[i].dist, 1e-9);
    EXPECT_NEAR(std::sqrt(PointDist2(r.point(got[i].r_id),
                                     s.point(got[i].s_id), 2)),
                got[i].dist, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, SemiJoinTest,
                         ::testing::Values(0.001, 0.01, 0.1),
                         [](const auto& info) {
                           std::string s = std::to_string(info.param);
                           std::replace(s.begin(), s.end(), '.', '_');
                           return "eps" + s.substr(0, 5);
                         });

TEST(SemiJoinTest, SmallRadiusIsCheaperThanFullAnn) {
  const Dataset r = RandomDataset(2, 2000, 8);
  const Dataset s = RandomDataset(2, 2000, 9);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  JoinStats tight, loose;
  std::vector<JoinPair> got;
  ASSERT_OK(DistanceSemiJoin(ir, is, 0.001, &got, &tight));
  got.clear();
  ASSERT_OK(DistanceSemiJoin(ir, is, kInf, &got, &loose));
  EXPECT_EQ(got.size(), r.size());  // kInf degenerates to full ANN
  EXPECT_LT(tight.distance_evals, loose.distance_evals);
}

TEST(AnnMaxDistanceTest, BoundedAnnDropsFarNeighbors) {
  const Dataset r = RandomDataset(2, 300, 10);
  const Dataset s = RandomDataset(2, 300, 11);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  AnnOptions opts;
  opts.k = 3;
  opts.max_distance = 0.05;
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
  SortByQueryId(&got);

  std::vector<NeighborList> full;
  ASSERT_OK(BruteForceAknn(r, s, 3, &full));
  ASSERT_EQ(got.size(), full.size());
  for (size_t i = 0; i < got.size(); ++i) {
    // Expected: the prefix of the full 3-NN list within the radius.
    size_t expect = 0;
    while (expect < full[i].neighbors.size() &&
           full[i].neighbors[expect].second <= opts.max_distance) {
      ++expect;
    }
    // The engine's slack may admit an exact-boundary neighbor either way;
    // distances strictly inside must match.
    ASSERT_GE(got[i].neighbors.size(), 0u);
    for (size_t j = 0; j < std::min(expect, got[i].neighbors.size()); ++j) {
      EXPECT_NEAR(got[i].neighbors[j].second, full[i].neighbors[j].second,
                  1e-9);
    }
    EXPECT_EQ(got[i].neighbors.size(), expect);
  }
}

}  // namespace
}  // namespace ann
