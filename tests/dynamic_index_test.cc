// DynamicIndex: persisted reads must track the in-memory builder exactly
// across update batches, snapshots must freeze the pre-batch tree, and
// the content-addressed delta must reuse unchanged subtrees.

#include "index/dynamic_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "ann/nn_search.h"
#include "check/invariants.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace ann {
namespace {

Rect UnitSpace(int dim) {
  Rect space;
  space.dim = dim;
  for (int d = 0; d < dim; ++d) {
    space.lo[d] = 0;
    space.hi[d] = 1;
  }
  return space;
}

class DynamicIndexTest : public ::testing::Test {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 256};
  NodeStore store_{&pool_};
};

std::unique_ptr<DynamicIndex> MakeMbrqtIndex(const Dataset& data,
                                             NodeStore* store) {
  MbrqtOptions opts;
  opts.bucket_capacity = 8;
  Mbrqt tree(UnitSpace(data.dim()), opts);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_OK(tree.Insert(data.point(i), i));
  }
  auto created = DynamicIndex::Create(std::move(tree), store);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

std::vector<uint64_t> AllIds(const SpatialIndex& index, int dim) {
  std::vector<uint64_t> ids;
  EXPECT_OK(RangeQuery(index, UnitSpace(dim), &ids));
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST_F(DynamicIndexTest, PersistedReadsMatchBuilder) {
  const Dataset data = RandomDataset(2, 300, 51);
  std::unique_ptr<DynamicIndex> index = MakeMbrqtIndex(data, &store_);
  EXPECT_EQ(index->num_objects(), data.size());
  EXPECT_EQ(index->dim(), 2);

  std::vector<uint64_t> want(data.size());
  for (size_t i = 0; i < want.size(); ++i) want[i] = i;
  EXPECT_EQ(AllIds(*index, 2), want);

  // Nearest-neighbor through the persisted pages agrees with brute force.
  const Scalar q[2] = {0.37, 0.61};
  std::vector<Neighbor> got;
  SearchStats sstats;
  ASSERT_OK(PointKnn(*index, q, 3, kInf, &got, &sstats));
  ASSERT_EQ(got.size(), 3u);
  Scalar best = kInf;
  uint64_t best_id = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    const Scalar d2 = PointDist2(q, data.point(i), 2);
    if (d2 < best) {
      best = d2;
      best_id = i;
    }
  }
  EXPECT_EQ(got[0].first, best_id);
}

TEST_F(DynamicIndexTest, ApplyBatchUpdatesPersistedState) {
  const Dataset data = RandomDataset(2, 200, 53);
  std::unique_ptr<DynamicIndex> index = MakeMbrqtIndex(data, &store_);
  const uint64_t epoch0 = index->committed_epoch();

  UpdateBatch batch(2);
  const Scalar ins[2] = {0.111, 0.222};
  batch.AddInsert(ins, 9000);
  batch.AddDelete(data.point(0), 0);
  DynamicIndex::ApplyStats stats;
  ASSERT_OK(index->ApplyBatch(batch, &stats));
  ASSERT_OK(index->CheckBuilderInvariants());

  EXPECT_GT(stats.epoch, epoch0);
  EXPECT_EQ(index->committed_epoch(), stats.epoch);
  EXPECT_EQ(index->num_objects(), data.size());  // -1 +1
  // A two-point batch over a 200-point tree touches one spine; nearly
  // everything must be reused, and the superseded spine must be freed.
  EXPECT_GT(stats.nodes_reused, 0u);
  EXPECT_GT(stats.nodes_written, 0u);
  EXPECT_GT(stats.nodes_freed, 0u);
  EXPECT_LT(stats.nodes_written, index->meta().num_nodes);

  std::vector<uint64_t> ids = AllIds(*index, 2);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 9000u));
  EXPECT_FALSE(std::binary_search(ids.begin(), ids.end(), 0u));
}

TEST_F(DynamicIndexTest, SnapshotFreezesPreBatchTree) {
  const Dataset data = RandomDataset(2, 150, 55);
  std::unique_ptr<DynamicIndex> index = MakeMbrqtIndex(data, &store_);

  ASSERT_OK_AND_ASSIGN(const IndexSnapshot snap, index->OpenSnapshot());
  const SnapshotView frozen(index.get(), snap);
  const std::vector<uint64_t> before = AllIds(frozen, 2);

  UpdateBatch batch(2);
  const Scalar ins[2] = {0.9, 0.9};
  batch.AddInsert(ins, 7777);
  batch.AddDelete(data.point(3), 3);
  ASSERT_OK(index->ApplyBatch(batch));

  // The frozen view still reads the pre-batch pages; the live index reads
  // the new ones.
  EXPECT_EQ(AllIds(frozen, 2), before);
  std::vector<uint64_t> after = AllIds(*index, 2);
  EXPECT_TRUE(std::binary_search(after.begin(), after.end(), 7777u));
  EXPECT_FALSE(std::binary_search(after.begin(), after.end(), 3u));
  EXPECT_EQ(snap.num_objects, index->num_objects());
  EXPECT_LT(snap.epoch, index->committed_epoch());
}

TEST_F(DynamicIndexTest, RStarBuilderRoundtrips) {
  const Dataset data = RandomDataset(2, 150, 57);
  RStarOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  RStarTree tree(2, opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DynamicIndex> index,
                       DynamicIndex::Create(std::move(tree), &store_));
  EXPECT_EQ(index->num_objects(), data.size());
  UpdateBatch batch(2);
  const Scalar ins[2] = {0.42, 0.43};
  batch.AddInsert(ins, 8888);
  ASSERT_OK(index->ApplyBatch(batch));
  ASSERT_OK(index->CheckBuilderInvariants());
  std::vector<uint64_t> ids = AllIds(*index, 2);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 8888u));
}

TEST_F(DynamicIndexTest, InvalidBatchPoisonsTheWriter) {
  const Dataset data = RandomDataset(2, 80, 59);
  std::unique_ptr<DynamicIndex> index = MakeMbrqtIndex(data, &store_);

  UpdateBatch bad(2);
  const Scalar nowhere[2] = {0.123, 0.456};
  bad.AddDelete(nowhere, 999999);  // not in the tree
  const Status first = index->ApplyBatch(bad);
  ASSERT_FALSE(first.ok());

  // The writer is poisoned: even a valid batch now fails with the original
  // error, while reads keep serving the last committed tree.
  UpdateBatch good(2);
  const Scalar ins[2] = {0.5, 0.5};
  good.AddInsert(ins, 1234);
  const Status second = index->ApplyBatch(good);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), first.code());
  EXPECT_EQ(index->num_objects(), data.size());
  EXPECT_EQ(AllIds(*index, 2).size(), data.size());
}

TEST_F(DynamicIndexTest, DimensionMismatchRejected) {
  const Dataset data = RandomDataset(2, 50, 61);
  std::unique_ptr<DynamicIndex> index = MakeMbrqtIndex(data, &store_);
  UpdateBatch batch(3);
  const Scalar p[3] = {0.1, 0.2, 0.3};
  batch.AddInsert(p, 1);
  const Status st = index->ApplyBatch(batch);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  // A contract violation caught before any mutation must NOT poison.
  UpdateBatch ok_batch(2);
  const Scalar q[2] = {0.1, 0.2};
  ok_batch.AddInsert(q, 4321);
  EXPECT_OK(index->ApplyBatch(ok_batch));
}

TEST_F(DynamicIndexTest, PoolInvariantsHoldAfterBatches) {
  const Dataset data = RandomDataset(2, 120, 63);
  std::unique_ptr<DynamicIndex> index = MakeMbrqtIndex(data, &store_);
  Rng rng(3);
  for (int b = 0; b < 5; ++b) {
    UpdateBatch batch(2);
    for (int i = 0; i < 4; ++i) {
      Scalar p[2] = {rng.NextDouble(), rng.NextDouble()};
      batch.AddInsert(p, 5000 + b * 10 + i);
    }
    ASSERT_OK(index->ApplyBatch(batch));
    ASSERT_OK(CheckBufferPoolInvariants(pool_));
  }
  // No snapshot is live, so every superseded page must have been
  // reclaimed by the commit-time GC passes.
  const VersionStats vs = pool_.version_stats();
  EXPECT_EQ(vs.pages_retired, vs.pages_reclaimed);
  EXPECT_EQ(vs.retired_pending, 0u);
}

}  // namespace
}  // namespace ann
