// Randomized end-to-end sweep: for many seeds, generate random workloads
// (random dimensionality, sizes, distribution, k, metric, traversal,
// index) and verify every engine and baseline against brute force. This
// is the library's broadest correctness net.

#include <gtest/gtest.h>

#include <memory>

#include "ann/distance_join.h"
#include "ann/mba.h"
#include "baselines/bnn.h"
#include "baselines/gorder/gorder_join.h"
#include "baselines/mnn.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

Dataset RandomWorkload(Rng* rng, int dim) {
  GstdSpec spec;
  spec.dim = dim;
  spec.count = 50 + rng->UniformInt(800);
  spec.seed = rng->Next();
  switch (rng->UniformInt(6)) {
    case 0:
      spec.distribution = Distribution::kUniform;
      break;
    case 1:
      spec.distribution = Distribution::kGaussian;
      break;
    case 2:
      spec.distribution = Distribution::kClustered;
      spec.clusters = 2 + static_cast<int>(rng->UniformInt(12));
      break;
    case 3:
      spec.distribution = Distribution::kSegments;
      spec.segments = 2 + static_cast<int>(rng->UniformInt(30));
      break;
    case 4:
      spec.distribution = Distribution::kGridQuantized;
      spec.lattice = 2 + static_cast<int>(rng->UniformInt(20));
      break;
    default:
      spec.distribution = Distribution::kZipfSkewed;
      break;
  }
  auto data = GenerateGstd(spec);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

class EngineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzzTest, RandomWorkloadsAllMethodsExact) {
  Rng rng(GetParam() * 7919 + 13);
  const int dim = 1 + static_cast<int>(rng.UniformInt(8));
  const Dataset r = RandomWorkload(&rng, dim);
  const Dataset s = RandomWorkload(&rng, dim);
  const int k = 1 + static_cast<int>(rng.UniformInt(8));

  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s, k, &want));

  // Random MBA/RBA configuration over random bucket sizes.
  AnnOptions opts;
  opts.k = k;
  opts.metric = rng.UniformInt(2) == 0 ? PruneMetric::kNxnDist
                                       : PruneMetric::kMaxMaxDist;
  opts.traversal = rng.UniformInt(2) == 0 ? Traversal::kDepthFirst
                                          : Traversal::kBreadthFirst;
  opts.expansion = rng.UniformInt(2) == 0 ? Expansion::kBidirectional
                                          : Expansion::kUnidirectional;

  if (rng.UniformInt(2) == 0) {
    MbrqtOptions qopts;
    qopts.bucket_capacity = 2 + static_cast<int>(rng.UniformInt(64));
    ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r, qopts));
    ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s, qopts));
    const MemIndexView ir(&qr.Finalize());
    const MemIndexView is(&qs.Finalize());
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
    ExpectResultsMatch(r, s, std::move(got), want);

    // Distance join on the same indexes at a data-derived radius.
    const Scalar eps = want[want.size() / 2].neighbors.front().second * 2;
    std::vector<JoinPair> pairs;
    ASSERT_OK(DistanceJoin(ir, is, eps, &pairs));
    for (const JoinPair& p : pairs) {
      EXPECT_LE(p.dist, eps);
      EXPECT_NEAR(
          std::sqrt(PointDist2(r.point(p.r_id), s.point(p.s_id), dim)),
          p.dist, 1e-9);
    }
  } else {
    RStarOptions ropts;
    ropts.leaf_capacity = 4 + static_cast<int>(rng.UniformInt(64));
    ropts.internal_capacity = 4 + static_cast<int>(rng.UniformInt(32));
    Result<RStarTree> tree_res =
        rng.UniformInt(2) == 0
            ? RStarTree::BulkLoadStr(s, ropts)
            : [&] {
                RStarTree t(dim, ropts);
                for (size_t i = 0; i < s.size(); ++i) {
                  EXPECT_TRUE(t.Insert(s.point(i), i).ok());
                }
                return Result<RStarTree>(std::move(t));
              }();
    ASSERT_TRUE(tree_res.ok());
    const MemIndexView is(&tree_res->tree());

    // Alternate between BNN and MNN against the R*-tree.
    std::vector<NeighborList> got;
    if (rng.UniformInt(2) == 0) {
      BnnOptions bopts;
      bopts.k = k;
      bopts.metric = opts.metric;
      bopts.group_size = 1 + rng.UniformInt(100);
      ASSERT_OK(BatchedNearestNeighbors(r, is, bopts, &got));
    } else {
      MnnOptions mopts;
      mopts.k = k;
      mopts.seed_bound = rng.UniformInt(2) == 0;
      ASSERT_OK(MultipleNearestNeighbors(r, is, mopts, &got));
    }
    ExpectResultsMatch(r, s, std::move(got), want);
  }
}

// ANNLIB_FUZZ_ITERS widens the seed range (see FuzzIters in test_util.h);
// the sanitizer CI configs run with a multiplier above 1.
INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Range(1, 1 + FuzzIters(24)),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(EngineFuzzTest, GorderRandomWorkloads) {
  for (int seed = 1; seed <= FuzzIters(8); ++seed) {
    Rng rng(seed * 104729);
    const int dim = 1 + static_cast<int>(rng.UniformInt(8));
    const Dataset r = RandomWorkload(&rng, dim);
    const Dataset s = RandomWorkload(&rng, dim);
    const int k = 1 + static_cast<int>(rng.UniformInt(5));

    MemDiskManager disk;
    BufferPool pool(&disk, 64);
    GorderOptions gopts;
    gopts.k = k;
    gopts.segments_per_dim = 2 + static_cast<int>(rng.UniformInt(30));
    gopts.pages_per_block = 1 + rng.UniformInt(4);
    std::vector<NeighborList> got;
    ASSERT_OK(GorderJoin(r, s, &pool, gopts, &got));
    ExpectExactAknn(r, s, k, std::move(got));
  }
}

}  // namespace
}  // namespace ann
