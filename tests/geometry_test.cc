#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(RectTest, EmptyExpandsToFirstPoint) {
  Rect r = Rect::Empty(3);
  EXPECT_TRUE(r.IsEmpty());
  const Scalar p[3] = {1, 2, 3};
  r.ExpandToPoint(p);
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.IsPoint());
  EXPECT_TRUE(r.ContainsPoint(p));
}

TEST(RectTest, FromPointIsDegenerate) {
  const Scalar p[2] = {0.5, -1.5};
  const Rect r = Rect::FromPoint(p, 2);
  EXPECT_TRUE(r.IsPoint());
  EXPECT_EQ(r.Area(), 0);
  EXPECT_EQ(r.Margin(), 0);
}

TEST(RectTest, ExpandToRectCovers) {
  const Scalar lo1[2] = {0, 0}, hi1[2] = {1, 1};
  const Scalar lo2[2] = {2, -1}, hi2[2] = {3, 0.5};
  Rect a = Rect::FromBounds(lo1, hi1, 2);
  const Rect b = Rect::FromBounds(lo2, hi2, 2);
  a.ExpandToRect(b);
  EXPECT_TRUE(a.ContainsRect(b));
  EXPECT_EQ(a.lo[0], 0);
  EXPECT_EQ(a.hi[0], 3);
  EXPECT_EQ(a.lo[1], -1);
  EXPECT_EQ(a.hi[1], 1);
}

TEST(RectTest, ContainsAndIntersects) {
  const Scalar lo[2] = {0, 0}, hi[2] = {2, 2};
  const Rect a = Rect::FromBounds(lo, hi, 2);
  const Scalar lo2[2] = {1, 1}, hi2[2] = {3, 3};
  const Rect b = Rect::FromBounds(lo2, hi2, 2);
  const Scalar lo3[2] = {2.5, 2.5}, hi3[2] = {4, 4};
  const Rect c = Rect::FromBounds(lo3, hi3, 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.ContainsRect(b));
  EXPECT_TRUE(b.ContainsRect(c) == false);
  // Touching edges count as intersecting.
  const Scalar lo4[2] = {2, 0}, hi4[2] = {3, 1};
  const Rect d = Rect::FromBounds(lo4, hi4, 2);
  EXPECT_TRUE(a.Intersects(d));
}

TEST(RectTest, AreaMarginOverlap) {
  const Scalar lo[2] = {0, 0}, hi[2] = {2, 3};
  const Rect a = Rect::FromBounds(lo, hi, 2);
  EXPECT_DOUBLE_EQ(a.Area(), 6);
  EXPECT_DOUBLE_EQ(a.Margin(), 5);
  const Scalar lo2[2] = {1, 1}, hi2[2] = {4, 2};
  const Rect b = Rect::FromBounds(lo2, hi2, 2);
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);  // [1,2]x[1,2]
  EXPECT_DOUBLE_EQ(b.OverlapArea(a), 1.0);
  EXPECT_DOUBLE_EQ(a.EnlargedArea(b), 12.0);  // [0,4]x[0,3]
}

TEST(RectTest, OverlapDisjointIsZero) {
  const Scalar lo[2] = {0, 0}, hi[2] = {1, 1};
  const Scalar lo2[2] = {2, 2}, hi2[2] = {3, 3};
  const Rect a = Rect::FromBounds(lo, hi, 2);
  const Rect b = Rect::FromBounds(lo2, hi2, 2);
  EXPECT_EQ(a.OverlapArea(b), 0);
}

TEST(RectTest, EqualityIsPerLane) {
  Rng rng(3);
  const Rect a = RandomRect(4, &rng);
  Rect b = a;
  EXPECT_TRUE(a == b);
  b.hi[2] += 1e-9;
  EXPECT_FALSE(a == b);
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset d(3);
  const Scalar p1[3] = {1, 2, 3};
  const Scalar p2[3] = {4, 5, 6};
  d.Append(p1);
  d.Append(p2);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.point(1)[0], 4);
  EXPECT_EQ(d.point(0)[2], 3);
}

TEST(DatasetTest, BoundingBoxIsTight) {
  const Dataset d = RandomDataset(5, 200, 77);
  const Rect box = d.BoundingBox();
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(box.ContainsPoint(d.point(i)));
  }
  // Every face must be touched by some point.
  for (int dim = 0; dim < 5; ++dim) {
    bool lo_touched = false, hi_touched = false;
    for (size_t i = 0; i < d.size(); ++i) {
      if (d.point(i)[dim] == box.lo[dim]) lo_touched = true;
      if (d.point(i)[dim] == box.hi[dim]) hi_touched = true;
    }
    EXPECT_TRUE(lo_touched && hi_touched) << "dim " << dim;
  }
}

TEST(DatasetTest, SelectPreservesOrder) {
  const Dataset d = RandomDataset(2, 10, 5);
  const Dataset sel = d.Select({7, 2, 2});
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel.point(0)[0], d.point(7)[0]);
  EXPECT_EQ(sel.point(1)[1], d.point(2)[1]);
  EXPECT_EQ(sel.point(2)[0], d.point(2)[0]);
}

TEST(PointDistTest, MatchesManual) {
  const Scalar a[3] = {0, 0, 0};
  const Scalar b[3] = {1, 2, 2};
  EXPECT_DOUBLE_EQ(PointDist2(a, b, 3), 9.0);
}

TEST(PointDistTest, BoundedAbortNeverUnderReportsBeyondBound) {
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    Scalar a[6], b[6];
    for (int d = 0; d < 6; ++d) {
      a[d] = rng.Uniform(-1, 1);
      b[d] = rng.Uniform(-1, 1);
    }
    const Scalar exact = PointDist2(a, b, 6);
    const Scalar bound = rng.Uniform(0, 6);
    const Scalar got = PointDist2Bounded(a, b, 6, bound);
    if (exact <= bound) {
      EXPECT_DOUBLE_EQ(got, exact);
    } else {
      EXPECT_GT(got, bound);  // may be partial, but always exceeds the bound
    }
  }
}

}  // namespace
}  // namespace ann
