#include "baselines/gorder/gorder_join.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gorder/grid_order.h"
#include "baselines/gorder/pca.h"
#include "datagen/gstd.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(PcaTest, PreservesPairwiseDistances) {
  const Dataset data = RandomDataset(5, 500, 1);
  ASSERT_OK_AND_ASSIGN(const PcaTransform pca, PcaTransform::Fit(data));
  const Dataset t = pca.Transform(data);
  Rng rng(2);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t a = rng.UniformInt(data.size());
    const size_t b = rng.UniformInt(data.size());
    EXPECT_NEAR(PointDist2(data.point(a), data.point(b), 5),
                PointDist2(t.point(a), t.point(b), 5), 1e-9);
  }
}

TEST(PcaTest, FirstComponentCarriesMostVariance) {
  // Strongly anisotropic data: variance along (1,1,...) dominates.
  Rng rng(3);
  Dataset data(4);
  for (int i = 0; i < 3000; ++i) {
    const Scalar t = rng.Gaussian();
    Scalar p[4];
    for (int d = 0; d < 4; ++d) p[d] = t + 0.05 * rng.Gaussian();
    data.Append(p);
  }
  ASSERT_OK_AND_ASSIGN(const PcaTransform pca, PcaTransform::Fit(data));
  ASSERT_EQ(pca.eigenvalues().size(), 4u);
  EXPECT_GT(pca.eigenvalues()[0], 50 * pca.eigenvalues()[1]);
  // Transformed first coordinate variance >> later coordinates.
  const Dataset t = pca.Transform(data);
  Scalar var0 = 0, var3 = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    var0 += t.point(i)[0] * t.point(i)[0];
    var3 += t.point(i)[3] * t.point(i)[3];
  }
  EXPECT_GT(var0, 50 * var3);
}

TEST(PcaTest, TransformCentersData) {
  const Dataset data = RandomDataset(3, 2000, 4);
  ASSERT_OK_AND_ASSIGN(const PcaTransform pca, PcaTransform::Fit(data));
  const Dataset t = pca.Transform(data);
  const std::vector<Scalar> mean = Mean(t);
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(mean[d], 0.0, 1e-9);
}

TEST(PcaTest, RejectsEmptySample) {
  EXPECT_FALSE(PcaTransform::Fit(Dataset(2)).ok());
}

TEST(GridOrderTest, SegmentsPartitionTheBox) {
  const Scalar lo[1] = {0}, hi[1] = {10};
  const GridOrder g(Rect::FromBounds(lo, hi, 1), 5);
  EXPECT_EQ(g.Segment(0, 0.0), 0);
  EXPECT_EQ(g.Segment(0, 1.9), 0);
  EXPECT_EQ(g.Segment(0, 2.1), 1);
  EXPECT_EQ(g.Segment(0, 9.99), 4);
  EXPECT_EQ(g.Segment(0, 10.0), 4);   // top edge clamps into last segment
  EXPECT_EQ(g.Segment(0, -5.0), 0);   // clamped
  EXPECT_EQ(g.Segment(0, 50.0), 4);   // clamped
}

TEST(GridOrderTest, OrderIsLexicographicOnCells) {
  const Dataset data = RandomDataset(2, 1000, 5);
  const GridOrder g(data.BoundingBox(), 8);
  const std::vector<size_t> order = g.SortedOrder(data);
  ASSERT_EQ(order.size(), data.size());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_FALSE(g.CellLess(data.point(order[i]), data.point(order[i - 1])))
        << "order violated at " << i;
  }
}

TEST(GridOrderTest, SortedOrderIsPermutation) {
  const Dataset data = RandomDataset(3, 500, 6);
  const GridOrder g(data.BoundingBox(), 4);
  std::vector<size_t> order = g.SortedOrder(data);
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

class GorderJoinTest : public ::testing::TestWithParam<int> {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 512};
};

TEST_P(GorderJoinTest, MatchesBruteForce) {
  const int k = GetParam();
  const Dataset r = RandomDataset(3, 500, 7);
  const Dataset s = RandomDataset(3, 700, 8);
  GorderOptions opts;
  opts.k = k;
  opts.segments_per_dim = 10;
  std::vector<NeighborList> got;
  GorderStats stats;
  ASSERT_OK(GorderJoin(r, s, &pool_, opts, &got, &stats));
  EXPECT_EQ(got.size(), r.size());
  EXPECT_GT(stats.blocks_r, 0u);
  ExpectExactAknn(r, s, k, std::move(got));
}

INSTANTIATE_TEST_SUITE_P(Ks, GorderJoinTest, ::testing::Values(1, 4, 10),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST_F(GorderJoinTest, ClusteredHighDimExact) {
  GstdSpec spec;
  spec.dim = 6;
  spec.count = 1000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 9;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  GorderOptions opts;
  opts.segments_per_dim = 6;
  std::vector<NeighborList> got;
  ASSERT_OK(GorderJoin(r, s, &pool_, opts, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST_F(GorderJoinTest, TinyBlocksStillExact) {
  const Dataset r = RandomDataset(2, 300, 10);
  const Dataset s = RandomDataset(2, 400, 11);
  GorderOptions opts;
  opts.pages_per_block = 1;
  opts.segments_per_dim = 4;
  std::vector<NeighborList> got;
  ASSERT_OK(GorderJoin(r, s, &pool_, opts, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST_F(GorderJoinTest, BlockPruningActuallySkipsPairs) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 8000;
  spec.distribution = Distribution::kClustered;
  spec.clusters = 20;
  spec.seed = 12;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  GorderOptions opts;
  opts.pages_per_block = 1;
  std::vector<NeighborList> got;
  GorderStats stats;
  ASSERT_OK(GorderJoin(r, s, &pool_, opts, &got, &stats));
  // Without pruning every pair would be joined.
  EXPECT_LT(stats.block_pairs_joined, stats.blocks_r * stats.blocks_s / 2);
}

TEST_F(GorderJoinTest, RejectsBadInputs) {
  const Dataset r = RandomDataset(2, 10, 13);
  const Dataset s3 = RandomDataset(3, 10, 14);
  std::vector<NeighborList> got;
  EXPECT_TRUE(
      GorderJoin(r, s3, &pool_, GorderOptions{}, &got).IsInvalidArgument());
  GorderOptions bad_k;
  bad_k.k = 0;
  const Dataset s = RandomDataset(2, 10, 15);
  EXPECT_TRUE(GorderJoin(r, s, &pool_, bad_k, &got).IsInvalidArgument());
  EXPECT_TRUE(GorderJoin(Dataset(2), s, &pool_, GorderOptions{}, &got)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ann
