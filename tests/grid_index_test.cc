#include "index/grid/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ann/mba.h"
#include "ann/validate.h"
#include "datagen/gstd.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(GridIndexTest, InvariantsAndRangeQueries) {
  const Dataset data = RandomDataset(2, 4000, 1);
  GridIndexOptions opts;
  opts.target_per_cell = 32;
  ASSERT_OK_AND_ASSIGN(const GridIndex grid, GridIndex::Build(data, opts));
  ASSERT_OK(grid.CheckInvariants());
  EXPECT_GT(grid.occupied_cells(), 16u);

  const MemIndexView view(&grid.tree());
  Rng rng(2);
  for (int q = 0; q < 15; ++q) {
    const Rect range = RandomRect(2, &rng);
    std::vector<uint64_t> got;
    ASSERT_OK(RangeQuery(view, range, &got));
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (size_t i = 0; i < data.size(); ++i) {
      if (range.ContainsPoint(data.point(i))) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(GridIndexTest, MbaOverGridIsExactAndValidatorAgrees) {
  GstdSpec spec;
  spec.dim = 3;
  spec.count = 1400;
  spec.distribution = Distribution::kClustered;
  spec.seed = 3;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  ASSERT_OK_AND_ASSIGN(const GridIndex gr, GridIndex::Build(r));
  ASSERT_OK_AND_ASSIGN(const GridIndex gs, GridIndex::Build(s));
  const MemIndexView ir(&gr.tree());
  const MemIndexView is(&gs.tree());
  AnnOptions opts;
  opts.k = 4;
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
  ASSERT_OK(ValidateAknnResults(r, s, 4, got));
}

TEST(GridIndexTest, SkewConcentratesCells) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 6000;
  spec.distribution = Distribution::kZipfSkewed;
  spec.zipf_theta = 1.1;
  spec.seed = 4;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  GridIndexOptions opts;
  opts.target_per_cell = 64;
  ASSERT_OK_AND_ASSIGN(const GridIndex grid, GridIndex::Build(data, opts));
  ASSERT_OK(grid.CheckInvariants());
  // The densest cell far exceeds the target — the non-adaptivity that
  // makes grid/hash methods fragile on skew.
  size_t max_cell = 0;
  for (const MemNode& node : grid.tree().nodes) {
    if (node.is_leaf) max_cell = std::max(max_cell, node.entries.size());
  }
  EXPECT_GT(max_cell, 4 * opts.target_per_cell);
}

TEST(GridIndexTest, SinglePointAndRejects) {
  Dataset one(2);
  const Scalar p[2] = {0.5, 0.5};
  one.Append(p);
  ASSERT_OK_AND_ASSIGN(const GridIndex grid, GridIndex::Build(one));
  ASSERT_OK(grid.CheckInvariants());
  EXPECT_EQ(grid.tree().num_objects, 1u);
  EXPECT_FALSE(GridIndex::Build(Dataset(2)).ok());
}

TEST(ValidateTest, CatchesCorruptedResults) {
  const Dataset r = RandomDataset(2, 60, 5);
  const Dataset s = RandomDataset(2, 80, 6);
  std::vector<NeighborList> good;
  ASSERT_OK(BruteForceAknn(r, s, 2, &good));
  ASSERT_OK(ValidateAknnResults(r, s, 2, good));

  // Wrong distance.
  auto bad = good;
  bad[10].neighbors[0].second += 0.5;
  EXPECT_TRUE(ValidateAknnResults(r, s, 2, bad).IsInternal());
  // Wrong id for the right distance.
  bad = good;
  bad[10].neighbors[0].first = (bad[10].neighbors[0].first + 1) % s.size();
  EXPECT_TRUE(ValidateAknnResults(r, s, 2, bad).IsInternal());
  // Missing list.
  bad = good;
  bad.pop_back();
  EXPECT_TRUE(ValidateAknnResults(r, s, 2, bad).IsInternal());
  // Duplicate query id.
  bad = good;
  bad[3].r_id = bad[4].r_id;
  EXPECT_TRUE(ValidateAknnResults(r, s, 2, bad).IsInternal());
}

}  // namespace
}  // namespace ann
