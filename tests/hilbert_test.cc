#include "common/hilbert.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/zorder.h"
#include "test_util.h"

namespace ann {
namespace {

Rect UnitBox(int dim) {
  Rect r;
  r.dim = dim;
  for (int d = 0; d < dim; ++d) {
    r.lo[d] = 0;
    r.hi[d] = 1;
  }
  return r;
}

TEST(HilbertTest, BijectiveOnSmallGrid2D) {
  // Every cell of an 8x8 grid must map to a distinct key, and the keys
  // must cover a contiguous-like range (a permutation of cell ids is not
  // required at reduced precision, but distinctness is).
  const HilbertCurve h(UnitBox(2));
  std::set<uint64_t> keys;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      const Scalar p[2] = {(x + 0.5) / 8, (y + 0.5) / 8};
      keys.insert(h.Key(p));
    }
  }
  EXPECT_EQ(keys.size(), 64u);
}

TEST(HilbertTest, AdjacentCellsOnCurveAreAdjacentInSpace) {
  // The defining Hilbert property: consecutive curve positions are
  // neighboring grid cells. Verify on a 32x32 grid by sorting all cells
  // by key and checking each hop moves by exactly one cell in one
  // dimension.
  const HilbertCurve h(UnitBox(2));
  const int g = 32;
  std::vector<std::pair<uint64_t, std::pair<int, int>>> cells;
  for (int x = 0; x < g; ++x) {
    for (int y = 0; y < g; ++y) {
      const Scalar p[2] = {(x + 0.5) / g, (y + 0.5) / g};
      cells.push_back({h.Key(p), {x, y}});
    }
  }
  std::sort(cells.begin(), cells.end());
  for (size_t i = 1; i < cells.size(); ++i) {
    const auto& [x1, y1] = cells[i - 1].second;
    const auto& [x2, y2] = cells[i].second;
    const int manhattan = std::abs(x1 - x2) + std::abs(y1 - y2);
    EXPECT_EQ(manhattan, 1) << "hop " << i;
  }
}

TEST(HilbertTest, SortedOrderIsAPermutation) {
  const Dataset data = RandomDataset(3, 400, 5);
  const HilbertCurve h(data.BoundingBox());
  std::vector<size_t> order = h.SortedOrder(data);
  std::sort(order.begin(), order.end());
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(HilbertTest, BetterLocalityThanZOrder) {
  // Average hop distance along the curve order: Hilbert must beat Z-order
  // (which jumps at quadrant boundaries).
  const Dataset data = RandomDataset(2, 6000, 9);
  const auto hop_sum = [&data](const std::vector<size_t>& order) {
    double total = 0;
    for (size_t i = 1; i < order.size(); ++i) {
      total += std::sqrt(
          PointDist2(data.point(order[i - 1]), data.point(order[i]), 2));
    }
    return total;
  };
  const double hilbert =
      hop_sum(HilbertCurve(data.BoundingBox()).SortedOrder(data));
  const double zorder = hop_sum(ZOrder(data.BoundingBox()).SortedOrder(data));
  EXPECT_LT(hilbert, zorder);
}

TEST(HilbertTest, WorksAcrossDimensions) {
  for (int dim : {1, 2, 3, 4, 6, 8, 10, 16}) {
    const Dataset data = RandomDataset(dim, 100, 20 + dim);
    const HilbertCurve h(data.BoundingBox());
    std::set<uint64_t> keys;
    for (size_t i = 0; i < data.size(); ++i) keys.insert(h.Key(data.point(i)));
    // Random distinct points should nearly all get distinct keys.
    EXPECT_GT(keys.size(), 95u) << "dim " << dim;
  }
}

TEST(HilbertTest, ClampsOutOfBoxPoints) {
  const HilbertCurve h(UnitBox(2));
  const Scalar below[2] = {-3, -3};
  const Scalar lo[2] = {0, 0};
  EXPECT_EQ(h.Key(below), h.Key(lo));
}

}  // namespace
}  // namespace ann
