#include "baselines/hnn.h"

#include <gtest/gtest.h>

#include "datagen/gstd.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace ann {
namespace {

class HnnTest : public ::testing::TestWithParam<int> {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 128};
};

TEST_P(HnnTest, MatchesBruteForce) {
  const int k = GetParam();
  const Dataset r = RandomDataset(2, 700, 1);
  const Dataset s = RandomDataset(2, 900, 2);
  HnnOptions opts;
  opts.k = k;
  std::vector<NeighborList> got;
  HnnStats stats;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, opts, &got, &stats));
  EXPECT_GT(stats.cells, 1u);
  ExpectExactAknn(r, s, k, std::move(got));
}

INSTANTIATE_TEST_SUITE_P(Ks, HnnTest, ::testing::Values(1, 3, 8),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST_F(HnnTest, HighDimensionalExact) {
  const Dataset r = RandomDataset(8, 300, 3);
  const Dataset s = RandomDataset(8, 400, 4);
  std::vector<NeighborList> got;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, HnnOptions{}, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST_F(HnnTest, QueriesOutsideTargetBoxExact) {
  // R extends far beyond S's bounding box: ring termination must stay
  // correct for clamped query cells.
  Rng rng(5);
  Dataset r(2), s(2);
  for (int i = 0; i < 300; ++i) {
    const Scalar pr[2] = {rng.Uniform(-3, 4), rng.Uniform(-3, 4)};
    r.Append(pr);
    const Scalar ps[2] = {rng.NextDouble(), rng.NextDouble()};
    s.Append(ps);
  }
  std::vector<NeighborList> got;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, HnnOptions{}, &got, nullptr));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST_F(HnnTest, SkewedDataExactButImbalanced) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 4000;
  spec.distribution = Distribution::kZipfSkewed;
  spec.zipf_theta = 1.1;
  spec.seed = 6;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  HnnOptions opts;
  std::vector<NeighborList> got;
  HnnStats stats;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, opts, &got, &stats));
  ExpectExactAknn(r, s, 1, std::move(got));
  // Skew indicator: the densest cell holds far more than the target.
  EXPECT_GT(stats.max_cell_points,
            4 * s.size() / std::max<uint64_t>(1, stats.cells));
}

TEST_F(HnnTest, TinyTargetSetExact) {
  const Dataset r = RandomDataset(3, 100, 7);
  const Dataset s = RandomDataset(3, 3, 8);
  HnnOptions opts;
  opts.k = 5;  // more than |S|
  std::vector<NeighborList> got;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, opts, &got));
  ExpectExactAknn(r, s, 5, std::move(got));
}

TEST_F(HnnTest, DuplicatePointsExact) {
  Rng rng(9);
  Dataset r(2), s(2);
  for (int i = 0; i < 200; ++i) {
    const Scalar p[2] = {rng.UniformInt(4) * 0.25, rng.UniformInt(4) * 0.25};
    r.Append(p);
    s.Append(p);
  }
  HnnOptions opts;
  opts.k = 3;
  std::vector<NeighborList> got;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, opts, &got));
  ExpectExactAknn(r, s, 3, std::move(got));
}

TEST_F(HnnTest, RejectsBadInputs) {
  const Dataset r = RandomDataset(2, 10, 10);
  const Dataset s3 = RandomDataset(3, 10, 11);
  std::vector<NeighborList> got;
  EXPECT_TRUE(HashNearestNeighbors(r, s3, &pool_, HnnOptions{}, &got)
                  .IsInvalidArgument());
  HnnOptions bad;
  bad.k = 0;
  const Dataset s = RandomDataset(2, 10, 12);
  EXPECT_TRUE(
      HashNearestNeighbors(r, s, &pool_, bad, &got).IsInvalidArgument());
  EXPECT_TRUE(HashNearestNeighbors(Dataset(2), s, &pool_, HnnOptions{}, &got)
                  .IsInvalidArgument());
}

TEST_F(HnnTest, CurveChoiceDoesNotChangeResults) {
  const Dataset r = RandomDataset(2, 400, 13);
  const Dataset s = RandomDataset(2, 400, 14);
  HnnOptions opts;
  opts.curve = CurveOrder::kZOrder;
  std::vector<NeighborList> z_got;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, opts, &z_got));
  opts.curve = CurveOrder::kHilbert;
  std::vector<NeighborList> h_got;
  ASSERT_OK(HashNearestNeighbors(r, s, &pool_, opts, &h_got));
  ExpectExactAknn(r, s, 1, std::move(z_got));
  ExpectExactAknn(r, s, 1, std::move(h_got));
}

}  // namespace
}  // namespace ann
