#include "index/index_file.h"

#include <gtest/gtest.h>

#include "ann/mba.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(IndexFileTest, CreateAddSyncOpenQuery) {
  const std::string path = TempPath("roundtrip.ann");
  const Dataset r = RandomDataset(2, 800, 1);
  const Dataset s = RandomDataset(2, 900, 2);

  {
    ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Create(path, 256));
    ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
    ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
    ASSERT_OK(file->AddIndex("queries", qr.Finalize()));
    ASSERT_OK(file->AddIndex("targets", qs.Finalize()));
    ASSERT_OK(file->Sync());
  }  // file closed

  ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Open(path, 64));
  EXPECT_EQ(file->IndexNames(),
            (std::vector<std::string>{"queries", "targets"}));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta mr, file->GetIndex("queries"));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta ms, file->GetIndex("targets"));
  EXPECT_EQ(mr.num_objects, r.size());
  EXPECT_EQ(ms.num_objects, s.size());

  const PagedIndexView ir = file->View(mr);
  const PagedIndexView is = file->View(ms);
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST(IndexFileTest, MixedIndexKindsInOneFile) {
  const std::string path = TempPath("mixed.ann");
  const Dataset data = RandomDataset(3, 500, 3);
  {
    ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Create(path, 256));
    ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
    ASSERT_OK_AND_ASSIGN(const RStarTree rt, RStarTree::BulkLoadStr(data));
    ASSERT_OK(file->AddIndex("quadtree", qt.Finalize()));
    ASSERT_OK(file->AddIndex("rstar", rt.tree()));
    ASSERT_OK(file->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Open(path, 64));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta mq, file->GetIndex("quadtree"));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta ms, file->GetIndex("rstar"));
  // Both indexes over the same data must agree on a self-ANN query.
  const PagedIndexView iq = file->View(mq);
  const PagedIndexView is = file->View(ms);
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(iq, is, AnnOptions{}, &got));
  ExpectExactAknn(data, data, 1, std::move(got));
}

TEST(IndexFileTest, ReplaceIndexUnderSameName) {
  const std::string path = TempPath("replace.ann");
  const Dataset small = RandomDataset(2, 50, 4);
  const Dataset big = RandomDataset(2, 300, 5);
  {
    ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Create(path, 256));
    ASSERT_OK_AND_ASSIGN(Mbrqt q1, Mbrqt::Build(small));
    ASSERT_OK(file->AddIndex("data", q1.Finalize()));
    ASSERT_OK(file->Sync());
    ASSERT_OK_AND_ASSIGN(Mbrqt q2, Mbrqt::Build(big));
    ASSERT_OK(file->AddIndex("data", q2.Finalize()));
    ASSERT_OK(file->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Open(path, 64));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta, file->GetIndex("data"));
  EXPECT_EQ(meta.num_objects, big.size());
}

TEST(IndexFileTest, EmptyCatalogRoundtrip) {
  const std::string path = TempPath("empty.ann");
  {
    ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Create(path, 16));
    ASSERT_OK(file->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Open(path, 16));
  EXPECT_TRUE(file->IndexNames().empty());
  EXPECT_TRUE(file->GetIndex("nope").status().IsNotFound());
}

TEST(IndexFileTest, OpenRejectsGarbage) {
  const std::string path = TempPath("garbage.ann");
  {
    // A page-sized file of zeros: right size, wrong magic.
    ASSERT_OK_AND_ASSIGN(auto disk, FileDiskManager::Create(path));
    ASSERT_OK_AND_ASSIGN(const PageId id, disk->AllocatePage());
    (void)id;
  }
  EXPECT_TRUE(IndexFile::Open(path, 16).status().IsIOError());
  EXPECT_FALSE(IndexFile::Open(TempPath("missing.ann"), 16).ok());
}

TEST(IndexFileTest, AddWithoutSyncIsNotVisibleAfterReopen) {
  const std::string path = TempPath("nosync.ann");
  const Dataset data = RandomDataset(2, 100, 6);
  {
    ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Create(path, 256));
    ASSERT_OK(file->Sync());  // durability point: empty catalog
    ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
    ASSERT_OK(file->AddIndex("data", qt.Finalize()));
    // no Sync for the addition — but the destructor flushes pages, so
    // the superblock still points at the *old* (empty) catalog.
  }
  ASSERT_OK_AND_ASSIGN(auto file, IndexFile::Open(path, 64));
  EXPECT_TRUE(file->GetIndex("data").status().IsNotFound());
}

}  // namespace
}  // namespace ann
