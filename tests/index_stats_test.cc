#include "index/index_stats.h"

#include <gtest/gtest.h>

#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(IndexStatsTest, CountsMatchTheTree) {
  const Dataset data = RandomDataset(2, 3000, 1);
  MbrqtOptions opts;
  opts.bucket_capacity = 32;
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  const MemTree& tree = qt.Finalize();
  const MemIndexView view(&tree);
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport report,
                       CollectIndexStats(view));
  EXPECT_EQ(report.objects, data.size());
  EXPECT_EQ(report.height, tree.height);
  EXPECT_EQ(report.internal_nodes + report.leaf_nodes, tree.nodes.size());
  EXPECT_GT(report.avg_leaf_fill, 1.0);
  EXPECT_FALSE(report.ToString().empty());
  uint64_t level_nodes = 0;
  for (const LevelStats& ls : report.levels) level_nodes += ls.nodes;
  EXPECT_EQ(level_nodes, tree.nodes.size());
}

TEST(IndexStatsTest, MbrqtSiblingsNeverOverlap) {
  // Regular quadtree decomposition: sibling cells are disjoint, so tight
  // MBRs inside them are disjoint too — Section 3.2's core argument.
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 8000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 2;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
  const MemIndexView view(&qt.Finalize());
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport report,
                       CollectIndexStats(view));
  EXPECT_EQ(report.total_overlap_ratio, 0.0);
}

TEST(IndexStatsTest, InsertionBuiltRstarOverlaps) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 8000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 2;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  RStarOptions opts;
  opts.leaf_capacity = 32;
  opts.internal_capacity = 16;
  RStarTree tree(2, opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  const MemIndexView view(&tree.tree());
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport report,
                       CollectIndexStats(view));
  EXPECT_GT(report.total_overlap_ratio, 0.0);
  EXPECT_EQ(report.objects, data.size());
}

TEST(IndexStatsTest, StrBulkLoadLeavesAreDisjoint) {
  // STR tiles the points, so leaf MBRs (children of the last internal
  // level) never overlap; the insertion-built tree's leaves do. (At upper
  // levels the R* split's explicit overlap minimization can beat STR's
  // tiling, so only the leaf level is a structural guarantee.)
  const Dataset data = RandomDataset(2, 6000, 3);
  RStarOptions opts;
  opts.leaf_capacity = 32;
  opts.internal_capacity = 16;
  RStarTree inserted(2, opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(inserted.Insert(data.point(i), i));
  }
  ASSERT_OK_AND_ASSIGN(const RStarTree bulk,
                       RStarTree::BulkLoadStr(data, opts));
  const MemIndexView vi(&inserted.tree());
  const MemIndexView vb(&bulk.tree());
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport ri, CollectIndexStats(vi));
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport rb, CollectIndexStats(vb));
  // Leaf MBR overlap is accounted at the leaves' parent level
  // (height - 2).
  ASSERT_GE(rb.height, 2);
  EXPECT_NEAR(rb.levels[rb.height - 2].overlap_ratio, 0.0, 1e-12);
  EXPECT_GT(ri.levels[ri.height - 2].overlap_ratio, 0.0);
}

}  // namespace
}  // namespace ann
