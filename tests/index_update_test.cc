// Single-threaded insert/delete coverage for both tree builders: every
// mutation is followed by a full structural CheckInvariants pass, and the
// capacities are tuned so the sequences exercise leaf splits, forced
// reinsertion (R*), underflow merging, and root collapse.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "index/mbrqt/mbrqt.h"
#include "index/node_format.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

Rect UnitSpace(int dim) {
  Rect space;
  space.dim = dim;
  for (int d = 0; d < dim; ++d) {
    space.lo[d] = 0;
    space.hi[d] = 1;
  }
  return space;
}

/// The full point/id set the tree is supposed to hold, verified via a
/// whole-space RangeQuery after every phase.
void ExpectExactContents(const MemTree& tree,
                         const std::unordered_set<uint64_t>& expect) {
  MemIndexView view(&tree);
  std::vector<uint64_t> got;
  ASSERT_OK(RangeQuery(view, UnitSpace(tree.dim), &got));
  std::sort(got.begin(), got.end());
  std::vector<uint64_t> want(expect.begin(), expect.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

class MbrqtUpdateTest : public ::testing::TestWithParam<int> {};

TEST_P(MbrqtUpdateTest, InsertThenDeleteAllWithInvariantChecks) {
  const int bucket = GetParam();
  MbrqtOptions opts;
  opts.bucket_capacity = bucket;
  Mbrqt tree(UnitSpace(2), opts);
  const Dataset data = RandomDataset(2, 300, /*seed=*/41);

  std::unordered_set<uint64_t> live;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
    ASSERT_OK(tree.CheckInvariants());
    live.insert(i);
  }
  EXPECT_EQ(tree.num_objects(), data.size());
  ExpectExactContents(tree.Finalize(), live);

  // Delete in a shuffled order so merges hit interior cells, not just the
  // insertion frontier.
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(7);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Next() % i]);
  }
  for (const size_t i : order) {
    ASSERT_OK(tree.Delete(data.point(i), i));
    ASSERT_OK(tree.CheckInvariants());
    live.erase(i);
  }
  EXPECT_EQ(tree.num_objects(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, MbrqtUpdateTest,
                         ::testing::Values(2, 4, 16));

TEST(MbrqtUpdateTest, DeleteMissingFails) {
  Mbrqt tree(UnitSpace(2));
  const Scalar p[2] = {0.5, 0.5};
  ASSERT_OK(tree.Insert(p, 1));
  const Scalar q[2] = {0.25, 0.25};
  EXPECT_FALSE(tree.Delete(q, 99).ok());
  // The failed delete must not have corrupted anything.
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.num_objects(), 1u);
}

TEST(MbrqtUpdateTest, MixedChurnKeepsExactContents) {
  MbrqtOptions opts;
  opts.bucket_capacity = 4;
  Mbrqt tree(UnitSpace(2), opts);
  const Dataset data = RandomDataset(2, 400, /*seed=*/42);
  std::unordered_set<uint64_t> live;
  Rng rng(11);
  for (int step = 0; step < 600; ++step) {
    const uint64_t id = rng.Next() % data.size();
    if (live.count(id) != 0) {
      ASSERT_OK(tree.Delete(data.point(id), id));
      live.erase(id);
    } else {
      ASSERT_OK(tree.Insert(data.point(id), id));
      live.insert(id);
    }
    ASSERT_OK(tree.CheckInvariants());
    ASSERT_EQ(tree.num_objects(), live.size());
  }
  ExpectExactContents(tree.Finalize(), live);
}

class RStarUpdateTest : public ::testing::TestWithParam<int> {};

TEST_P(RStarUpdateTest, InsertThenDeleteAllWithInvariantChecks) {
  RStarOptions opts;
  opts.leaf_capacity = GetParam();
  opts.internal_capacity = GetParam();
  RStarTree tree(2, opts);
  const Dataset data = RandomDataset(2, 300, /*seed=*/43);

  std::unordered_set<uint64_t> live;
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
    // Underflow from deletes triggers re-insertion of orphans, which can
    // transiently violate min-fill nowhere — a full check must hold after
    // EVERY mutation, min-fill included.
    ASSERT_OK(tree.CheckInvariants());
    live.insert(i);
  }
  EXPECT_EQ(tree.num_objects(), data.size());
  ExpectExactContents(tree.tree(), live);

  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(9);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Next() % i]);
  }
  for (const size_t i : order) {
    ASSERT_OK(tree.Delete(data.point(i), i));
    ASSERT_OK(tree.CheckInvariants());
    live.erase(i);
  }
  EXPECT_EQ(tree.num_objects(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RStarUpdateTest,
                         ::testing::Values(4, 8, 16));

TEST(RStarUpdateTest, DeleteMissingFails) {
  RStarTree tree(2);
  const Scalar p[2] = {0.5, 0.5};
  ASSERT_OK(tree.Insert(p, 1));
  EXPECT_FALSE(tree.Delete(p, 99).ok());
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.num_objects(), 1u);
}

TEST(RStarUpdateTest, MixedChurnKeepsExactContents) {
  RStarOptions opts;
  opts.leaf_capacity = 6;
  opts.internal_capacity = 6;
  RStarTree tree(2, opts);
  const Dataset data = RandomDataset(2, 400, /*seed=*/44);
  std::unordered_set<uint64_t> live;
  Rng rng(13);
  for (int step = 0; step < 600; ++step) {
    const uint64_t id = rng.Next() % data.size();
    if (live.count(id) != 0) {
      ASSERT_OK(tree.Delete(data.point(id), id));
      live.erase(id);
    } else {
      ASSERT_OK(tree.Insert(data.point(id), id));
      live.insert(id);
    }
    ASSERT_OK(tree.CheckInvariants());
    ASSERT_EQ(tree.num_objects(), live.size());
  }
  ExpectExactContents(tree.tree(), live);
}

}  // namespace
}  // namespace ann
