#include <gtest/gtest.h>

#include "ann/mba.h"
#include "baselines/bnn.h"
#include "baselines/gorder/gorder_join.h"
#include "baselines/mnn.h"
#include "datagen/gstd.h"
#include "datagen/real_sim.h"
#include "index/mbrqt/mbrqt.h"
#include "index/paged_index_view.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

/// A full disk-resident deployment of one dataset: disk, pool, node store
/// and both persisted indexes — the configuration the benchmarks measure.
class DiskDeployment {
 public:
  explicit DiskDeployment(size_t pool_frames = 1024)
      : pool_(&disk_, pool_frames), store_(&pool_) {}

  Status AddMbrqt(const Dataset& data, int bucket_capacity = 32) {
    MbrqtOptions opts;
    opts.bucket_capacity = bucket_capacity;
    ANN_ASSIGN_OR_RETURN(Mbrqt qt, Mbrqt::Build(data, opts));
    ANN_ASSIGN_OR_RETURN(mbrqt_meta_, PersistMemTree(qt.Finalize(), &store_));
    return Status::OK();
  }

  Status AddRstar(const Dataset& data) {
    RStarOptions opts;
    opts.leaf_capacity = 32;
    opts.internal_capacity = 16;
    ANN_ASSIGN_OR_RETURN(const RStarTree rt,
                         RStarTree::BulkLoadStr(data, opts));
    ANN_ASSIGN_OR_RETURN(rstar_meta_, PersistMemTree(rt.tree(), &store_));
    return Status::OK();
  }

  PagedIndexView MbrqtView() const { return {&store_, mbrqt_meta_}; }
  PagedIndexView RstarView() const { return {&store_, rstar_meta_}; }

  BufferPool* pool() { return &pool_; }
  MemDiskManager* disk() { return &disk_; }

 private:
  MemDiskManager disk_;
  BufferPool pool_;
  NodeStore store_;
  PersistedIndexMeta mbrqt_meta_;
  PersistedIndexMeta rstar_meta_;
};

TEST(IntegrationTest, AllMethodsAgreeOnClusteredWorkload) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 4000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 1;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);

  DiskDeployment dep_r, dep_s;
  ASSERT_OK(dep_r.AddMbrqt(r));
  ASSERT_OK(dep_s.AddMbrqt(s));
  ASSERT_OK(dep_s.AddRstar(s));
  DiskDeployment dep_r_rstar;
  ASSERT_OK(dep_r_rstar.AddRstar(r));

  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s, 1, &want));

  // MBA over persisted MBRQTs.
  {
    const PagedIndexView ir = dep_r.MbrqtView();
    const PagedIndexView is = dep_s.MbrqtView();
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
  // RBA over persisted R*-trees.
  {
    const PagedIndexView ir = dep_r_rstar.RstarView();
    const PagedIndexView is = dep_s.RstarView();
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
  // BNN over the persisted R*-tree.
  {
    const PagedIndexView is = dep_s.RstarView();
    std::vector<NeighborList> got;
    ASSERT_OK(BatchedNearestNeighbors(r, is, BnnOptions{}, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
  // MNN over the persisted MBRQT.
  {
    const PagedIndexView is = dep_s.MbrqtView();
    std::vector<NeighborList> got;
    ASSERT_OK(MultipleNearestNeighbors(r, is, MnnOptions{}, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
  // GORDER with its own storage.
  {
    MemDiskManager disk;
    BufferPool pool(&disk, 256);
    std::vector<NeighborList> got;
    GorderOptions opts;
    opts.segments_per_dim = 16;
    ASSERT_OK(GorderJoin(r, s, &pool, opts, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
}

TEST(IntegrationTest, ResultsIndependentOfBufferPoolSize) {
  const Dataset r = RandomDataset(2, 1500, 3);
  const Dataset s = RandomDataset(2, 1500, 4);

  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s, 3, &want));

  for (size_t frames : {4u, 64u, 1024u}) {
    DiskDeployment dep_r(1024), dep_s(1024);
    ASSERT_OK(dep_r.AddMbrqt(r));
    ASSERT_OK(dep_s.AddMbrqt(s));
    ASSERT_OK(dep_r.pool()->Reset(frames));
    ASSERT_OK(dep_s.pool()->Reset(frames));
    const PagedIndexView ir = dep_r.MbrqtView();
    const PagedIndexView is = dep_s.MbrqtView();
    AnnOptions opts;
    opts.k = 3;
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
    ExpectResultsMatch(r, s, std::move(got), want);
  }
}

TEST(IntegrationTest, SmallPoolCausesMissesButSameAnswer) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 6000;
  spec.distribution = Distribution::kUniform;
  spec.seed = 5;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);

  DiskDeployment dep(2048);
  ASSERT_OK(dep.AddMbrqt(s));
  DiskDeployment dep_r(2048);
  ASSERT_OK(dep_r.AddMbrqt(r));

  // Big pool run.
  dep.pool()->ResetStats();
  std::vector<NeighborList> got_big;
  {
    const PagedIndexView ir = dep_r.MbrqtView();
    const PagedIndexView is = dep.MbrqtView();
    ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got_big));
  }
  const uint64_t big_misses = dep.pool()->stats().pool_misses;

  // Tiny pool run.
  ASSERT_OK(dep.pool()->Reset(4));
  dep.pool()->ResetStats();
  std::vector<NeighborList> got_small;
  {
    const PagedIndexView ir = dep_r.MbrqtView();
    const PagedIndexView is = dep.MbrqtView();
    ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got_small));
  }
  const uint64_t small_misses = dep.pool()->stats().pool_misses;

  EXPECT_GE(small_misses, big_misses);
  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s, 1, &want));
  ExpectResultsMatch(r, s, std::move(got_big), want);
  ExpectResultsMatch(r, s, std::move(got_small), want);
}

TEST(IntegrationTest, FileBackedDeploymentWorksEndToEnd) {
  ASSERT_OK_AND_ASSIGN(
      auto disk,
      FileDiskManager::Create(::testing::TempDir() + "/integration.pages"));
  BufferPool pool(disk.get(), 64);
  NodeStore store(&pool);

  const Dataset r = RandomDataset(2, 800, 6);
  const Dataset s = RandomDataset(2, 800, 7);
  ASSERT_OK_AND_ASSIGN(Mbrqt qtr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qts, Mbrqt::Build(s));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta_r,
                       PersistMemTree(qtr.Finalize(), &store));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta_s,
                       PersistMemTree(qts.Finalize(), &store));
  ASSERT_OK(pool.FlushAll());

  const PagedIndexView ir(&store, meta_r);
  const PagedIndexView is(&store, meta_s);
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
  EXPECT_GT(disk->stats().physical_writes, 0u);
}

TEST(IntegrationTest, TacLikeWorkloadAllIndexMethodsAgree) {
  ASSERT_OK_AND_ASSIGN(const Dataset tac, MakeTacLike(6000));
  Dataset r, s;
  SplitHalves(tac, &r, &s);

  DiskDeployment dep_r, dep_s;
  ASSERT_OK(dep_r.AddMbrqt(r));
  ASSERT_OK(dep_s.AddMbrqt(s));

  AnnOptions opts;
  opts.k = 5;
  std::vector<NeighborList> got;
  const PagedIndexView ir = dep_r.MbrqtView();
  const PagedIndexView is = dep_s.MbrqtView();
  ASSERT_OK(AllNearestNeighbors(ir, is, opts, &got));
  ExpectExactAknn(r, s, 5, std::move(got));
}

TEST(IntegrationTest, ForestCoverLikeTenDimensions) {
  ASSERT_OK_AND_ASSIGN(const Dataset fc, MakeForestCoverLike(3000));
  Dataset r, s;
  SplitHalves(fc, &r, &s);

  DiskDeployment dep_r, dep_s;
  ASSERT_OK(dep_r.AddMbrqt(r));
  ASSERT_OK(dep_s.AddMbrqt(s));
  const PagedIndexView ir = dep_r.MbrqtView();
  const PagedIndexView is = dep_s.MbrqtView();
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
  ExpectExactAknn(r, s, 1, std::move(got));
}

TEST(IntegrationTest, MbaLocalityBeatsGorderUnderTinyPool) {
  // The paper's Figure 3(b) claim, as a coarse assertion: at high
  // dimensionality with a pool far smaller than the data, MBA's
  // synchronized traversal produces far fewer pool misses than GORDER's
  // repeated inner-file scans. Page-sized buckets (the paper's layout).
  GstdSpec spec;
  spec.dim = 10;
  spec.count = 30000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 8;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);

  DiskDeployment dep_r(4096), dep_s(4096);
  ASSERT_OK(dep_r.AddMbrqt(r, /*bucket_capacity=*/0));
  ASSERT_OK(dep_s.AddMbrqt(s, /*bucket_capacity=*/0));
  ASSERT_OK(dep_r.pool()->Reset(32));
  ASSERT_OK(dep_s.pool()->Reset(32));
  dep_r.pool()->ResetStats();
  dep_s.pool()->ResetStats();
  std::vector<NeighborList> got;
  {
    const PagedIndexView ir = dep_r.MbrqtView();
    const PagedIndexView is = dep_s.MbrqtView();
    ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
  }
  const uint64_t mba_misses =
      dep_r.pool()->stats().pool_misses + dep_s.pool()->stats().pool_misses;

  MemDiskManager gdisk;
  BufferPool gpool(&gdisk, 32);
  GorderOptions gopts;
  gopts.segments_per_dim = 4;
  std::vector<NeighborList> ggot;
  ASSERT_OK(GorderJoin(r, s, &gpool, gopts, &ggot));
  const uint64_t gorder_misses = gpool.stats().pool_misses;

  EXPECT_EQ(got.size(), ggot.size());
  EXPECT_LT(mba_misses, gorder_misses);
}

}  // namespace
}  // namespace ann
