#include "index/kdtree/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ann/mba.h"
#include "datagen/gstd.h"
#include "index/index_stats.h"
#include "index/paged_index_view.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<uint64_t> BruteRange(const Dataset& data, const Rect& range) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (range.ContainsPoint(data.point(i))) out.push_back(i);
  }
  return out;
}

class KdTreeBuildTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(KdTreeBuildTest, InvariantsAndRangeQueries) {
  const auto [dim, count] = GetParam();
  const Dataset data = RandomDataset(dim, count, 400 + dim);
  KdTreeOptions opts;
  opts.bucket_capacity = 16;
  ASSERT_OK_AND_ASSIGN(const KdTree tree, KdTree::Build(data, opts));
  EXPECT_EQ(tree.num_objects(), data.size());
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_GT(tree.height(), 1);

  const MemIndexView view(&tree.tree());
  Rng rng(dim);
  for (int q = 0; q < 20; ++q) {
    const Rect range = RandomRect(dim, &rng);
    std::vector<uint64_t> got;
    ASSERT_OK(RangeQuery(view, range, &got));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(data, range)) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, KdTreeBuildTest,
    ::testing::Values(std::make_tuple(2, 3000), std::make_tuple(4, 1500),
                      std::make_tuple(8, 800)));

TEST(KdTreeTest, RoundRobinSplitAlsoWorks) {
  const Dataset data = RandomDataset(3, 2000, 1);
  KdTreeOptions opts;
  opts.bucket_capacity = 8;
  opts.split_widest_dimension = false;
  ASSERT_OK_AND_ASSIGN(const KdTree tree, KdTree::Build(data, opts));
  ASSERT_OK(tree.CheckInvariants());
}

TEST(KdTreeTest, TinyAndDuplicateInputs) {
  for (size_t n : {1u, 2u, 17u}) {
    const Dataset data = RandomDataset(2, n, 100 + n);
    ASSERT_OK_AND_ASSIGN(const KdTree tree, KdTree::Build(data));
    ASSERT_OK(tree.CheckInvariants());
    EXPECT_EQ(tree.num_objects(), n);
  }
  // All-identical points still build a balanced tree.
  Dataset dup(2);
  const Scalar p[2] = {0.5, 0.5};
  for (int i = 0; i < 300; ++i) dup.Append(p);
  KdTreeOptions opts;
  opts.bucket_capacity = 16;
  ASSERT_OK_AND_ASSIGN(const KdTree tree, KdTree::Build(dup, opts));
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_EQ(tree.num_objects(), 300u);
}

TEST(KdTreeTest, RejectsEmptyAndBadDim) {
  EXPECT_FALSE(KdTree::Build(Dataset(2)).ok());
}

TEST(KdTreeTest, MbaOverKdTreesIsExact) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 1600;
  spec.distribution = Distribution::kClustered;
  spec.seed = 3;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  KdTreeOptions opts;
  opts.bucket_capacity = 16;
  ASSERT_OK_AND_ASSIGN(const KdTree tr, KdTree::Build(r, opts));
  ASSERT_OK_AND_ASSIGN(const KdTree ts, KdTree::Build(s, opts));
  const MemIndexView ir(&tr.tree());
  const MemIndexView is(&ts.tree());
  for (int k : {1, 5}) {
    AnnOptions aopts;
    aopts.k = k;
    std::vector<NeighborList> got;
    ASSERT_OK(AllNearestNeighbors(ir, is, aopts, &got));
    ExpectExactAknn(r, s, k, std::move(got));
  }
}

TEST(KdTreeTest, PersistedViewMatches) {
  const Dataset data = RandomDataset(4, 2500, 5);
  ASSERT_OK_AND_ASSIGN(const KdTree tree, KdTree::Build(data));
  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  NodeStore store(&pool);
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta,
                       PersistMemTree(tree.tree(), &store));
  EXPECT_EQ(meta.num_objects, data.size());
  const PagedIndexView view(&store, meta);
  std::vector<uint64_t> got;
  ASSERT_OK(RangeQuery(view, data.BoundingBox(), &got));
  EXPECT_EQ(got.size(), data.size());
}

TEST(KdTreeTest, SiblingOverlapIsNearZero) {
  // Median cuts partition the points, so sibling MBRs only overlap on the
  // cut plane when duplicates straddle it — the overlap *area* of random
  // continuous data is zero.
  const Dataset data = RandomDataset(2, 5000, 6);
  ASSERT_OK_AND_ASSIGN(const KdTree tree, KdTree::Build(data));
  const MemIndexView view(&tree.tree());
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport report,
                       CollectIndexStats(view));
  EXPECT_NEAR(report.total_overlap_ratio, 0.0, 1e-12);
}

}  // namespace
}  // namespace ann
