#include "metrics/kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/geometry.h"
#include "common/random.h"
#include "metrics/metrics.h"

namespace ann {
namespace {

// The kernels' contract (kernels.h) is EXACT equivalence: each output must
// be *bitwise* equal to the scalar routine it replaces, because the
// engine's golden-pinned prune counters sit downstream of comparisons at
// bound boundaries. So these tests compare with EXPECT_EQ on Scalar
// values (bit-level for finite doubles), never EXPECT_NEAR.

std::vector<Scalar> RandomBlock(Rng* rng, int dim, size_t count,
                                Scalar scale = 1.0) {
  std::vector<Scalar> pts(count * dim);
  for (Scalar& v : pts) v = (rng->NextDouble() - 0.5) * scale;
  return pts;
}

// ---------------------------------------------------------------------------
// PointBlockDist2
// ---------------------------------------------------------------------------

TEST(PointBlockDist2Test, BitwiseEqualToScalarAcrossDims) {
  Rng rng(42);
  for (int dim = 1; dim <= kMaxDim; ++dim) {
    const size_t count = 257;  // not a multiple of any likely unroll width
    const auto pts = RandomBlock(&rng, dim, count);
    const auto q = RandomBlock(&rng, dim, 1);
    std::vector<Scalar> out(count, -1);
    kernels::PointBlockDist2(q.data(), pts.data(), count, dim, out.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], PointDist2(q.data(), pts.data() + i * dim, dim))
          << "dim=" << dim << " i=" << i;
    }
  }
}

TEST(PointBlockDist2Test, AdversarialInputs) {
  // Negative zero, exact duplicates of the query, huge/tiny magnitude mix:
  // the cases where a re-associated or fused accumulation would diverge
  // from the scalar loop.
  const int dim = 4;
  const Scalar q[dim] = {0.0, -0.0, 1e150, 1e-150};
  const std::vector<Scalar> pts = {
      0.0,  -0.0, 1e150,  1e-150,  // identical to q: distance exactly 0
      -0.0, 0.0,  1e150,  1e-150,  // -0 vs +0: still exactly 0
      1.0,  2.0,  -1e150, 3e-150,  // huge intermediate
      1e-9, 1e-9, 1e150,  0.0,     // tiny differences next to huge terms
  };
  const size_t count = pts.size() / dim;
  std::vector<Scalar> out(count, -1);
  kernels::PointBlockDist2(q, pts.data(), count, dim, out.data());
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(out[i], PointDist2(q, pts.data() + i * dim, dim)) << i;
  }
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(PointBlockDist2Test, EmptyAndSinglePointBlocks) {
  const Scalar q[2] = {0.25, 0.75};
  const Scalar p[2] = {1.25, 0.75};
  Scalar sentinel = -7;
  kernels::PointBlockDist2(q, p, 0, 2, &sentinel);  // must not write
  EXPECT_EQ(sentinel, -7);
  Scalar out = -1;
  kernels::PointBlockDist2(q, p, 1, 2, &out);
  EXPECT_EQ(out, 1.0);
}

// ---------------------------------------------------------------------------
// PointBlockDist2Bounded
// ---------------------------------------------------------------------------

TEST(PointBlockDist2BoundedTest, LowDimNeverEarlyExits) {
  // dim <= 4 runs the straight loop: every output is the full distance.
  Rng rng(43);
  for (int dim = 1; dim <= 4; ++dim) {
    const size_t count = 100;
    const auto pts = RandomBlock(&rng, dim, count);
    const auto q = RandomBlock(&rng, dim, 1);
    std::vector<Scalar> out(count, -1);
    const size_t exits = kernels::PointBlockDist2Bounded(
        q.data(), pts.data(), count, dim, /*bound2=*/0.01, out.data());
    EXPECT_EQ(exits, 0u) << dim;
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], PointDist2(q.data(), pts.data() + i * dim, dim));
    }
  }
}

TEST(PointBlockDist2BoundedTest, EarlyExitIsCertifiedPrunable) {
  Rng rng(44);
  for (int dim = 5; dim <= kMaxDim; ++dim) {
    const size_t count = 300;
    const auto pts = RandomBlock(&rng, dim, count);
    const auto q = RandomBlock(&rng, dim, 1);
    // A tight bound so a large fraction of points exits mid-accumulation.
    const Scalar bound2 = 0.05;
    std::vector<Scalar> out(count, -1);
    const size_t exits = kernels::PointBlockDist2Bounded(
        q.data(), pts.data(), count, dim, bound2, out.data());
    size_t observed_exits = 0;
    for (size_t i = 0; i < count; ++i) {
      const Scalar full = PointDist2(q.data(), pts.data() + i * dim, dim);
      if (out[i] == full) {
        // Treated as not-exited: the value is exact, usable as a distance.
        continue;
      }
      // Early-exited: a partial prefix sum, strictly below the full value
      // and already certainly-prunable, so the caller's admission test
      // makes the same decision it would have made on the full distance.
      ++observed_exits;
      EXPECT_LT(out[i], full) << "dim=" << dim << " i=" << i;
      EXPECT_TRUE(ExceedsBound2(out[i], bound2));
      EXPECT_TRUE(ExceedsBound2(full, bound2));
    }
    EXPECT_EQ(exits, observed_exits) << dim;
    EXPECT_GT(exits, 0u) << dim;  // the bound above must actually bite
    // The prune decision is identical for every point, exited or not.
    for (size_t i = 0; i < count; ++i) {
      const Scalar full = PointDist2(q.data(), pts.data() + i * dim, dim);
      EXPECT_EQ(ExceedsBound2(out[i], bound2), ExceedsBound2(full, bound2));
    }
  }
}

TEST(PointBlockDist2BoundedTest, InfiniteBoundMatchesUnbounded) {
  Rng rng(45);
  const int dim = 8;
  const size_t count = 64;
  const auto pts = RandomBlock(&rng, dim, count);
  const auto q = RandomBlock(&rng, dim, 1);
  std::vector<Scalar> bounded(count), unbounded(count);
  const size_t exits = kernels::PointBlockDist2Bounded(
      q.data(), pts.data(), count, dim, kInf, bounded.data());
  kernels::PointBlockDist2(q.data(), pts.data(), count, dim,
                           unbounded.data());
  EXPECT_EQ(exits, 0u);
  EXPECT_EQ(bounded, unbounded);
}

TEST(PointBlockDist2BoundedTest, EmptyBlock) {
  const Scalar q[8] = {0};
  Scalar sentinel = -7;
  EXPECT_EQ(kernels::PointBlockDist2Bounded(q, q, 0, 8, 1.0, &sentinel), 0u);
  EXPECT_EQ(sentinel, -7);
}

// ---------------------------------------------------------------------------
// RectBlockBounds2 / OwnerBlockBounds2
// ---------------------------------------------------------------------------

Rect RandomRect(Rng* rng, int dim) {
  Rect r;
  r.dim = dim;
  for (int d = 0; d < dim; ++d) {
    Scalar a = rng->NextDouble(), b = rng->NextDouble();
    if (a > b) std::swap(a, b);
    r.lo[d] = a;
    r.hi[d] = b;
  }
  return r;
}

/// Mimics the engine's real layout: the Rect is the head of a larger
/// record (IndexEntry), so the kernel must honor an arbitrary byte stride.
struct PaddedRect {
  Rect mbr;
  char pad[24];
};

TEST(RectBlockBounds2Test, StridedBlockMatchesPerEntryMetrics) {
  Rng rng(46);
  for (const PruneMetric metric :
       {PruneMetric::kMaxMaxDist, PruneMetric::kNxnDist}) {
    for (int dim : {1, 2, 3, 7, kMaxDim}) {
      const Rect m = RandomRect(&rng, dim);
      std::vector<PaddedRect> entries(33);
      for (PaddedRect& e : entries) e.mbr = RandomRect(&rng, dim);
      std::vector<Scalar> mind2(entries.size()), maxd2(entries.size());
      kernels::RectBlockBounds2(m, &entries[0].mbr, sizeof(PaddedRect),
                                entries.size(), metric, mind2.data(),
                                maxd2.data());
      for (size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(mind2[i], MinMinDist2(m, entries[i].mbr));
        EXPECT_EQ(maxd2[i], UpperBound2(metric, m, entries[i].mbr));
      }
    }
  }
}

TEST(RectBlockBounds2Test, DegenerateRectsEqualPointDistances) {
  // Object entries are degenerate rects (lo == hi); all rect metrics then
  // collapse to the exact point distance — the identity the Gather stage's
  // exact-equivalence argument rests on.
  Rng rng(47);
  const int dim = 3;
  const auto qp = RandomBlock(&rng, dim, 1);
  const auto pts = RandomBlock(&rng, dim, 16);
  const Rect m = Rect::FromPoint(qp.data(), dim);
  std::vector<Rect> rects(16);
  for (size_t i = 0; i < rects.size(); ++i) {
    rects[i] = Rect::FromPoint(pts.data() + i * dim, dim);
  }
  std::vector<Scalar> mind2(rects.size()), maxd2(rects.size());
  kernels::RectBlockBounds2(m, rects.data(), sizeof(Rect), rects.size(),
                            PruneMetric::kNxnDist, mind2.data(),
                            maxd2.data());
  for (size_t i = 0; i < rects.size(); ++i) {
    const Scalar d2 = PointDist2(qp.data(), pts.data() + i * dim, dim);
    EXPECT_EQ(mind2[i], d2);
    EXPECT_EQ(maxd2[i], d2);
  }
}

TEST(OwnerBlockBounds2Test, MatchesPerOwnerMetrics) {
  Rng rng(48);
  for (const PruneMetric metric :
       {PruneMetric::kMaxMaxDist, PruneMetric::kNxnDist}) {
    const int dim = 5;
    const Rect n = RandomRect(&rng, dim);
    std::vector<Rect> owners(21);
    for (Rect& o : owners) o = RandomRect(&rng, dim);
    std::vector<Scalar> mind2(owners.size()), maxd2(owners.size());
    kernels::OwnerBlockBounds2(owners.data(), owners.size(), n, metric,
                               mind2.data(), maxd2.data());
    for (size_t i = 0; i < owners.size(); ++i) {
      EXPECT_EQ(mind2[i], MinMinDist2(owners[i], n));
      EXPECT_EQ(maxd2[i], UpperBound2(metric, owners[i], n));
    }
  }
}

TEST(RectBlockBounds2Test, EmptyBlock) {
  Rng rng(49);
  const Rect m = RandomRect(&rng, 2);
  Scalar sentinel_min = -7, sentinel_max = -7;
  kernels::RectBlockBounds2(m, nullptr, sizeof(Rect), 0,
                            PruneMetric::kNxnDist, &sentinel_min,
                            &sentinel_max);
  kernels::OwnerBlockBounds2(nullptr, 0, m, PruneMetric::kNxnDist,
                             &sentinel_min, &sentinel_max);
  EXPECT_EQ(sentinel_min, -7);
  EXPECT_EQ(sentinel_max, -7);
}

// ---------------------------------------------------------------------------
// BlockBest
// ---------------------------------------------------------------------------

TEST(BlockBestTest, TiesKeepTheEarliestIndex) {
  const Scalar d2[5] = {3, 1, 1, 2, 1};
  Scalar best = kInf;
  size_t idx = 999;
  EXPECT_TRUE(kernels::BlockBest(d2, 5, 100, &best, &idx));
  EXPECT_EQ(best, 1);
  EXPECT_EQ(idx, 101u);  // first of the tied minima

  // A later block with an equal value must NOT displace the incumbent.
  const Scalar d2b[2] = {1, 1};
  EXPECT_FALSE(kernels::BlockBest(d2b, 2, 200, &best, &idx));
  EXPECT_EQ(idx, 101u);

  // A strict improvement does.
  const Scalar d2c[1] = {0.5};
  EXPECT_TRUE(kernels::BlockBest(d2c, 1, 300, &best, &idx));
  EXPECT_EQ(best, 0.5);
  EXPECT_EQ(idx, 300u);
}

TEST(BlockBestTest, EmptyBlockReportsNoImprovement) {
  Scalar best = 2;
  size_t idx = 7;
  EXPECT_FALSE(kernels::BlockBest(nullptr, 0, 0, &best, &idx));
  EXPECT_EQ(best, 2);
  EXPECT_EQ(idx, 7u);
}

TEST(BlockBestTest, BlockedArgminEqualsSequentialArgmin) {
  // The brute-force k=1 path: bounded kernel + BlockBest over odd-sized
  // blocks must reproduce the sequential strict-< argmin exactly —
  // same index (ties earliest) and same bitwise distance. Early-exited
  // partials can't win: they exceed the running best by construction.
  Rng rng(50);
  const int dim = 8;
  const size_t n = 1000;
  const auto pts = RandomBlock(&rng, dim, n);
  const auto q = RandomBlock(&rng, dim, 1);

  Scalar seq_best = kInf;
  size_t seq_idx = 0;
  for (size_t i = 0; i < n; ++i) {
    const Scalar d2 = PointDist2(q.data(), pts.data() + i * dim, dim);
    if (d2 < seq_best) {
      seq_best = d2;
      seq_idx = i;
    }
  }

  Scalar blk_best = kInf;
  size_t blk_idx = 0;
  const size_t kBlock = 7;
  std::vector<Scalar> d2(kBlock);
  for (size_t j0 = 0; j0 < n; j0 += kBlock) {
    const size_t count = std::min(kBlock, n - j0);
    kernels::PointBlockDist2Bounded(q.data(), pts.data() + j0 * dim, count,
                                    dim, blk_best, d2.data());
    kernels::BlockBest(d2.data(), count, j0, &blk_best, &blk_idx);
  }
  EXPECT_EQ(blk_best, seq_best);
  EXPECT_EQ(blk_idx, seq_idx);
}

}  // namespace
}  // namespace ann
