#include "common/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Matrix m(3);
  m.at(0, 0) = 3;
  m.at(1, 1) = 1;
  m.at(2, 2) = 2;
  ASSERT_OK_AND_ASSIGN(const EigenDecomposition eig, SymmetricEigen(m));
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 2, 1e-12);
  EXPECT_NEAR(eig.values[2], 1, 1e-12);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors along the
  // diagonals.
  Matrix m(2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;
  ASSERT_OK_AND_ASSIGN(const EigenDecomposition eig, SymmetricEigen(m));
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 1, 1e-12);
  EXPECT_NEAR(std::abs(eig.vectors.at(0, 0)), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::abs(eig.vectors.at(0, 1)), std::sqrt(0.5), 1e-9);
}

TEST(SymmetricEigenTest, RejectsAsymmetric) {
  Matrix m(2);
  m.at(0, 1) = 1;
  m.at(1, 0) = 2;
  EXPECT_TRUE(SymmetricEigen(m).status().IsInvalidArgument());
}

TEST(SymmetricEigenTest, RejectsEmpty) {
  EXPECT_TRUE(SymmetricEigen(Matrix()).status().IsInvalidArgument());
}

TEST(SymmetricEigenTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(7));
    Matrix m(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        m.at(i, j) = rng.Uniform(-2, 2);
        m.at(j, i) = m.at(i, j);
      }
    }
    ASSERT_OK_AND_ASSIGN(const EigenDecomposition eig, SymmetricEigen(m));
    // Eigenvalues descending.
    for (int i = 1; i < n; ++i) EXPECT_LE(eig.values[i], eig.values[i - 1]);
    // Rows of `vectors` are orthonormal.
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        Scalar dot = 0;
        for (int c = 0; c < n; ++c) {
          dot += eig.vectors.at(i, c) * eig.vectors.at(j, c);
        }
        EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
      }
    }
    // A v = lambda v.
    for (int i = 0; i < n; ++i) {
      for (int r = 0; r < n; ++r) {
        Scalar av = 0;
        for (int c = 0; c < n; ++c) av += m.at(r, c) * eig.vectors.at(i, c);
        EXPECT_NEAR(av, eig.values[i] * eig.vectors.at(i, r), 1e-7);
      }
    }
  }
}

TEST(CovarianceTest, MeanAndCovarianceOfKnownData) {
  Dataset d(2);
  const Scalar pts[4][2] = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  for (const auto& p : pts) d.Append(p);
  const std::vector<Scalar> mean = Mean(d);
  EXPECT_DOUBLE_EQ(mean[0], 1);
  EXPECT_DOUBLE_EQ(mean[1], 1);
  const Matrix cov = Covariance(d);
  EXPECT_DOUBLE_EQ(cov.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(cov.at(1, 1), 1);
  EXPECT_DOUBLE_EQ(cov.at(0, 1), 0);
}

TEST(CovarianceTest, CorrelatedDataHasDominantDirection) {
  Rng rng(8);
  Dataset d(2);
  for (int i = 0; i < 5000; ++i) {
    const Scalar t = rng.Gaussian();
    const Scalar p[2] = {t, t + 0.01 * rng.Gaussian()};
    d.Append(p);
  }
  ASSERT_OK_AND_ASSIGN(const EigenDecomposition eig,
                       SymmetricEigen(Covariance(d)));
  EXPECT_GT(eig.values[0], 100 * eig.values[1]);
  // Principal direction ~ (1,1)/sqrt(2).
  EXPECT_NEAR(std::abs(eig.vectors.at(0, 0)), std::sqrt(0.5), 0.02);
}

}  // namespace
}  // namespace ann
