#include "ann/lpq.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ann {
namespace {

IndexEntry NodeEntry(uint64_t id) {
  Rect r = Rect::Empty(2);
  const Scalar p[2] = {0, 0};
  r.ExpandToPoint(p);
  return IndexEntry::Node(r, id);
}

LpqEntry Entry(uint64_t id, Scalar mind2, Scalar maxd2) {
  LpqEntry e;
  e.entry = NodeEntry(id);
  e.mind2 = mind2;
  e.maxd2 = maxd2;
  return e;
}

TEST(LpqTest, DequeuesInMindOrder) {
  Lpq lpq(NodeEntry(0), kInf, 1);
  PruneStats stats;
  lpq.Enqueue(Entry(1, 5, 100), &stats);
  lpq.Enqueue(Entry(2, 1, 100), &stats);
  lpq.Enqueue(Entry(3, 3, 100), &stats);
  LpqEntry out;
  ASSERT_TRUE(lpq.Dequeue(&out));
  EXPECT_EQ(out.entry.id, 2u);
  ASSERT_TRUE(lpq.Dequeue(&out));
  EXPECT_EQ(out.entry.id, 3u);
  ASSERT_TRUE(lpq.Dequeue(&out));
  EXPECT_EQ(out.entry.id, 1u);
  EXPECT_FALSE(lpq.Dequeue(&out));
}

TEST(LpqTest, MindTiesBrokenBySmallerMaxd) {
  Lpq lpq(NodeEntry(0), kInf, 1);
  PruneStats stats;
  lpq.Enqueue(Entry(1, 2, 50), &stats);
  lpq.Enqueue(Entry(2, 2, 10), &stats);
  LpqEntry out;
  ASSERT_TRUE(lpq.Dequeue(&out));
  EXPECT_EQ(out.entry.id, 2u);
}

TEST(LpqTest, BoundTightensToMinMaxdForK1) {
  Lpq lpq(NodeEntry(0), kInf, 1);
  PruneStats stats;
  EXPECT_EQ(lpq.bound2(), kInf);
  lpq.Enqueue(Entry(1, 0, 9), &stats);
  EXPECT_EQ(lpq.bound2(), 9);
  lpq.Enqueue(Entry(2, 0, 4), &stats);
  EXPECT_EQ(lpq.bound2(), 4);
  lpq.Enqueue(Entry(3, 0, 16), &stats);  // looser: no change
  EXPECT_EQ(lpq.bound2(), 4);
}

TEST(LpqTest, EntryAboveBoundIsRejected) {
  Lpq lpq(NodeEntry(0), 10.0, 1);
  PruneStats stats;
  EXPECT_FALSE(lpq.Enqueue(Entry(1, 11, 20), &stats));
  EXPECT_EQ(stats.pruned_on_entry, 1u);
  EXPECT_TRUE(lpq.Enqueue(Entry(2, 10, 20), &stats));  // ties admitted
}

TEST(LpqTest, FilterStageEvictsTailOnTighterBound) {
  Lpq lpq(NodeEntry(0), kInf, 1);
  PruneStats stats;
  lpq.Enqueue(Entry(1, 1, 100), &stats);
  lpq.Enqueue(Entry(2, 8, 100), &stats);
  lpq.Enqueue(Entry(3, 9, 100), &stats);
  ASSERT_EQ(lpq.size(), 3u);
  // New entry with MAXD 5 kills queued entries with MIND > 5.
  lpq.Enqueue(Entry(4, 2, 5), &stats);
  EXPECT_EQ(stats.pruned_by_filter, 2u);
  EXPECT_EQ(lpq.size(), 2u);  // ids 1 and 4
  LpqEntry out;
  ASSERT_TRUE(lpq.Dequeue(&out));
  EXPECT_EQ(out.entry.id, 1u);
  ASSERT_TRUE(lpq.Dequeue(&out));
  EXPECT_EQ(out.entry.id, 4u);
}

TEST(LpqTest, InheritedBoundActsImmediately) {
  Lpq lpq(NodeEntry(0), 4.0, 1);
  PruneStats stats;
  EXPECT_FALSE(lpq.Enqueue(Entry(1, 5, 6), &stats));
  EXPECT_TRUE(lpq.Enqueue(Entry(2, 3, 3.5), &stats));
  EXPECT_EQ(lpq.bound2(), 3.5);
}

TEST(LpqTest, AknnBoundRequiresKEntries) {
  Lpq lpq(NodeEntry(0), kInf, 3);
  PruneStats stats;
  lpq.Enqueue(Entry(1, 0, 1), &stats);
  EXPECT_EQ(lpq.bound2(), kInf);  // only 1 witness
  lpq.Enqueue(Entry(2, 0, 2), &stats);
  EXPECT_EQ(lpq.bound2(), kInf);  // only 2 witnesses
  lpq.Enqueue(Entry(3, 0, 5), &stats);
  EXPECT_EQ(lpq.bound2(), 5);  // 3rd smallest MAXD
  lpq.Enqueue(Entry(4, 0, 3), &stats);
  EXPECT_EQ(lpq.bound2(), 3);  // new 3rd smallest: {1,2,3}
}

TEST(LpqTest, AknnBoundSurvivesDequeues) {
  // The bound is historical: dequeuing entries must not loosen it.
  Lpq lpq(NodeEntry(0), kInf, 2);
  PruneStats stats;
  lpq.Enqueue(Entry(1, 0, 1), &stats);
  lpq.Enqueue(Entry(2, 0, 2), &stats);
  EXPECT_EQ(lpq.bound2(), 2);
  LpqEntry out;
  lpq.Dequeue(&out);
  lpq.Dequeue(&out);
  EXPECT_EQ(lpq.bound2(), 2);
  EXPECT_FALSE(lpq.Enqueue(Entry(3, 2.5, 9), &stats));
}

TEST(LpqTest, StatsCountAttemptsAndSuccesses) {
  Lpq lpq(NodeEntry(0), 1.0, 1);
  PruneStats stats;
  lpq.Enqueue(Entry(1, 0.5, 2), &stats);
  lpq.Enqueue(Entry(2, 5, 9), &stats);
  EXPECT_EQ(stats.enqueue_attempts, 2u);
  EXPECT_EQ(stats.enqueued, 1u);
  EXPECT_EQ(stats.pruned_on_entry, 1u);
}

TEST(LpqTest, LargeChurnKeepsOrder) {
  Lpq lpq(NodeEntry(0), kInf, 1);
  PruneStats stats;
  Rng rng(5);
  // Interleave enqueues and dequeues; popped mind2 must never decrease
  // relative to the previous pop when no smaller entry was added after.
  Scalar last = -1;
  int pops = 0;
  for (int i = 0; i < 2000; ++i) {
    lpq.Enqueue(Entry(i, rng.Uniform(0, 1000), kInf), &stats);
    if (i % 3 == 0) {
      LpqEntry out;
      if (lpq.Dequeue(&out)) {
        ++pops;
        (void)last;
        last = out.mind2;
      }
    }
  }
  // Drain: now pops must be monotone.
  LpqEntry out;
  Scalar prev = -1;
  while (lpq.Dequeue(&out)) {
    EXPECT_GE(out.mind2, prev);
    prev = out.mind2;
  }
  EXPECT_GT(pops, 0);
}

}  // namespace
}  // namespace ann
