// Equivalence tests for incremental All-NN maintenance: repairing the
// affected result lists after an S-side update batch must reproduce a
// full recomputation against the post-batch index, list for list.

#include "ann/maintain.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "ann/mba.h"
#include "index/mbrqt/mbrqt.h"
#include "index/node_format.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

constexpr uint64_t kInsertIdBase = 10000;

/// R is a static MBRQT view; S is an R*-tree mutated in place (the
/// MemIndexView reads whatever the tree currently holds, so the same view
/// serves as `is_old` before the batch and `is_new` after it).
struct MaintainFixture {
  Dataset r_data;
  Dataset s_data;
  std::unique_ptr<Mbrqt> r_tree;
  std::unique_ptr<MemIndexView> ir;
  std::unique_ptr<RStarTree> s_tree;
  std::unique_ptr<MemIndexView> is;
};

MaintainFixture MakeFixture(size_t nr, size_t ns, uint64_t seed) {
  MaintainFixture f;
  f.r_data = RandomDataset(2, nr, seed);
  f.s_data = RandomDataset(2, ns, seed + 1);
  MbrqtOptions qopts;
  qopts.bucket_capacity = 8;
  auto built = Mbrqt::Build(f.r_data, qopts);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  f.r_tree = std::make_unique<Mbrqt>(std::move(built).value());
  f.ir = std::make_unique<MemIndexView>(&f.r_tree->Finalize());
  RStarOptions ropts;
  ropts.leaf_capacity = 8;
  ropts.internal_capacity = 8;
  f.s_tree = std::make_unique<RStarTree>(2, ropts);
  for (size_t i = 0; i < ns; ++i) {
    EXPECT_OK(f.s_tree->Insert(f.s_data.point(i), i));
  }
  f.is = std::make_unique<MemIndexView>(&f.s_tree->tree());
  return f;
}

/// Builds a batch of `num_del` distinct existing deletes and `num_ins`
/// fresh-id inserts, and applies it to the S tree.
UpdateBatch MakeAndApplyBatch(MaintainFixture* f, size_t num_del,
                              size_t num_ins, uint64_t seed) {
  UpdateBatch batch(2);
  Rng rng(seed);
  std::unordered_set<uint64_t> picked;
  while (picked.size() < num_del) {
    const uint64_t id = rng.Next() % f->s_data.size();
    if (picked.insert(id).second) {
      batch.AddDelete(f->s_data.point(id), id);
    }
  }
  for (size_t i = 0; i < num_ins; ++i) {
    Scalar p[2] = {rng.NextDouble(), rng.NextDouble()};
    batch.AddInsert(p, kInsertIdBase + i);
  }
  for (size_t i = 0; i < batch.num_deletes(); ++i) {
    EXPECT_OK(f->s_tree->Delete(batch.delete_point(i), batch.delete_ids[i]));
  }
  for (size_t i = 0; i < batch.num_inserts(); ++i) {
    EXPECT_OK(f->s_tree->Insert(batch.insert_point(i), batch.insert_ids[i]));
  }
  return batch;
}

void ExpectSameResults(const std::vector<NeighborList>& got,
                       const std::vector<NeighborList>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].r_id, want[i].r_id);
    ASSERT_EQ(got[i].neighbors.size(), want[i].neighbors.size())
        << "list " << got[i].r_id;
    for (size_t j = 0; j < got[i].neighbors.size(); ++j) {
      EXPECT_EQ(got[i].neighbors[j].first, want[i].neighbors[j].first)
          << "list " << got[i].r_id << " slot " << j;
      EXPECT_NEAR(got[i].neighbors[j].second, want[i].neighbors[j].second,
                  1e-12)
          << "list " << got[i].r_id << " slot " << j;
    }
  }
}

void RunCase(int k, Scalar max_distance, size_t num_del, size_t num_ins,
             uint64_t seed, MaintainStats* stats_out = nullptr) {
  MaintainFixture f = MakeFixture(/*nr=*/250, /*ns=*/400, seed);
  AnnOptions opts;
  opts.k = k;
  opts.max_distance = max_distance;

  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  SortByQueryId(&results);

  const UpdateBatch batch = MakeAndApplyBatch(&f, num_del, num_ins, seed + 2);

  MaintainStats stats;
  ASSERT_OK(MaintainAllNn(*f.ir, *f.is, opts, batch, &results, &stats));
  EXPECT_EQ(stats.queries, f.r_data.size());

  std::vector<NeighborList> expected;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &expected));
  SortByQueryId(&expected);
  SortByQueryId(&results);
  ExpectSameResults(results, expected);
  if (stats_out != nullptr) *stats_out = stats;
}

TEST(MaintainTest, InsertsOnlyK1) {
  RunCase(/*k=*/1, kInf, /*num_del=*/0, /*num_ins=*/12, /*seed=*/101);
}

TEST(MaintainTest, InsertsOnlyK4) {
  MaintainStats stats;
  RunCase(/*k=*/4, kInf, /*num_del=*/0, /*num_ins=*/12, /*seed=*/103,
          &stats);
  // Insert-only damage repairs by merge; nothing may trigger a re-query.
  EXPECT_EQ(stats.requeried, 0u);
  EXPECT_GT(stats.merged, 0u);
  EXPECT_EQ(stats.merged, stats.insert_affected);
  // The aggregate bound must prune most of IR for a 12-point batch.
  EXPECT_GT(stats.probe_node_prunes, 0u);
}

TEST(MaintainTest, DeletesOnlyK1) {
  MaintainStats stats;
  RunCase(/*k=*/1, kInf, /*num_del=*/15, /*num_ins=*/0, /*seed=*/105,
          &stats);
  EXPECT_EQ(stats.merged, 0u);
  EXPECT_GT(stats.requeried, 0u);
  EXPECT_EQ(stats.requeried, stats.delete_affected);
}

TEST(MaintainTest, DeletesOnlyK4) {
  RunCase(/*k=*/4, kInf, /*num_del=*/15, /*num_ins=*/0, /*seed=*/107);
}

TEST(MaintainTest, MixedK3) {
  RunCase(/*k=*/3, kInf, /*num_del=*/10, /*num_ins=*/10, /*seed=*/109);
}

TEST(MaintainTest, MixedBoundedMaxDistance) {
  // Short lists (bound = max_distance) must grow when an in-range point
  // arrives and never admit out-of-range ones.
  RunCase(/*k=*/3, /*max_distance=*/0.05, /*num_del=*/10, /*num_ins=*/10,
          /*seed=*/111);
}

TEST(MaintainTest, LargeBatchMixed) {
  RunCase(/*k=*/2, kInf, /*num_del=*/60, /*num_ins=*/60, /*seed=*/113);
}

TEST(MaintainTest, EmptyBatchIsANoOp) {
  MaintainFixture f = MakeFixture(100, 150, 117);
  AnnOptions opts;
  opts.k = 2;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  std::vector<NeighborList> before = results;
  MaintainStats stats;
  ASSERT_OK(MaintainAllNn(*f.ir, *f.is, opts, UpdateBatch(2), &results,
                          &stats));
  SortByQueryId(&before);
  SortByQueryId(&results);
  ExpectSameResults(results, before);
  EXPECT_EQ(stats.requeried, 0u);
  EXPECT_EQ(stats.merged, 0u);
}

TEST(MaintainTest, MissingResultListFails) {
  MaintainFixture f = MakeFixture(50, 80, 119);
  AnnOptions opts;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  SortByQueryId(&results);
  results.pop_back();  // orphan one IR object
  UpdateBatch batch(2);
  const Scalar p[2] = {0.5, 0.5};
  batch.AddInsert(p, kInsertIdBase);
  ASSERT_OK(f.s_tree->Insert(p, kInsertIdBase));
  const Status st = MaintainAllNn(*f.ir, *f.is, opts, batch, &results);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(MaintainTest, DuplicateResultListFails) {
  MaintainFixture f = MakeFixture(50, 80, 121);
  AnnOptions opts;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  results.push_back(results.front());
  UpdateBatch batch(2);
  const Scalar p[2] = {0.5, 0.5};
  batch.AddInsert(p, kInsertIdBase);
  ASSERT_OK(f.s_tree->Insert(p, kInsertIdBase));
  const Status st = MaintainAllNn(*f.ir, *f.is, opts, batch, &results);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

}  // namespace
}  // namespace ann
