// Equivalence tests for incremental All-NN maintenance: repairing the
// affected result lists after an S-side update batch must reproduce a
// full recomputation against the post-batch index, list for list.

#include "ann/maintain.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <unordered_set>
#include <vector>

#include "ann/mba.h"
#include "index/dynamic_index.h"
#include "index/mbrqt/mbrqt.h"
#include "index/node_format.h"
#include "index/rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace ann {
namespace {

constexpr uint64_t kInsertIdBase = 10000;

/// R is a static MBRQT view; S is an R*-tree mutated in place (the
/// MemIndexView reads whatever the tree currently holds, so the same view
/// serves as `is_old` before the batch and `is_new` after it).
struct MaintainFixture {
  Dataset r_data;
  Dataset s_data;
  std::unique_ptr<Mbrqt> r_tree;
  std::unique_ptr<MemIndexView> ir;
  std::unique_ptr<RStarTree> s_tree;
  std::unique_ptr<MemIndexView> is;
};

MaintainFixture MakeFixture(size_t nr, size_t ns, uint64_t seed) {
  MaintainFixture f;
  f.r_data = RandomDataset(2, nr, seed);
  f.s_data = RandomDataset(2, ns, seed + 1);
  MbrqtOptions qopts;
  qopts.bucket_capacity = 8;
  auto built = Mbrqt::Build(f.r_data, qopts);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  f.r_tree = std::make_unique<Mbrqt>(std::move(built).value());
  f.ir = std::make_unique<MemIndexView>(&f.r_tree->Finalize());
  RStarOptions ropts;
  ropts.leaf_capacity = 8;
  ropts.internal_capacity = 8;
  f.s_tree = std::make_unique<RStarTree>(2, ropts);
  for (size_t i = 0; i < ns; ++i) {
    EXPECT_OK(f.s_tree->Insert(f.s_data.point(i), i));
  }
  f.is = std::make_unique<MemIndexView>(&f.s_tree->tree());
  return f;
}

/// Builds a batch of `num_del` distinct existing deletes and `num_ins`
/// fresh-id inserts, and applies it to the S tree.
UpdateBatch MakeAndApplyBatch(MaintainFixture* f, size_t num_del,
                              size_t num_ins, uint64_t seed) {
  UpdateBatch batch(2);
  Rng rng(seed);
  std::unordered_set<uint64_t> picked;
  while (picked.size() < num_del) {
    const uint64_t id = rng.Next() % f->s_data.size();
    if (picked.insert(id).second) {
      batch.AddDelete(f->s_data.point(id), id);
    }
  }
  for (size_t i = 0; i < num_ins; ++i) {
    Scalar p[2] = {rng.NextDouble(), rng.NextDouble()};
    batch.AddInsert(p, kInsertIdBase + i);
  }
  for (size_t i = 0; i < batch.num_deletes(); ++i) {
    EXPECT_OK(f->s_tree->Delete(batch.delete_point(i), batch.delete_ids[i]));
  }
  for (size_t i = 0; i < batch.num_inserts(); ++i) {
    EXPECT_OK(f->s_tree->Insert(batch.insert_point(i), batch.insert_ids[i]));
  }
  return batch;
}

void ExpectSameResults(const std::vector<NeighborList>& got,
                       const std::vector<NeighborList>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].r_id, want[i].r_id);
    ASSERT_EQ(got[i].neighbors.size(), want[i].neighbors.size())
        << "list " << got[i].r_id;
    for (size_t j = 0; j < got[i].neighbors.size(); ++j) {
      EXPECT_EQ(got[i].neighbors[j].first, want[i].neighbors[j].first)
          << "list " << got[i].r_id << " slot " << j;
      EXPECT_NEAR(got[i].neighbors[j].second, want[i].neighbors[j].second,
                  1e-12)
          << "list " << got[i].r_id << " slot " << j;
    }
  }
}

void RunCase(int k, Scalar max_distance, size_t num_del, size_t num_ins,
             uint64_t seed, MaintainStats* stats_out = nullptr) {
  MaintainFixture f = MakeFixture(/*nr=*/250, /*ns=*/400, seed);
  AnnOptions opts;
  opts.k = k;
  opts.max_distance = max_distance;

  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  SortByQueryId(&results);

  const UpdateBatch batch = MakeAndApplyBatch(&f, num_del, num_ins, seed + 2);

  MaintainStats stats;
  ASSERT_OK(MaintainAllNn(*f.ir, *f.is, opts, batch, &results, &stats));
  EXPECT_EQ(stats.queries, f.r_data.size());

  std::vector<NeighborList> expected;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &expected));
  SortByQueryId(&expected);
  SortByQueryId(&results);
  ExpectSameResults(results, expected);
  if (stats_out != nullptr) *stats_out = stats;
}

TEST(MaintainTest, InsertsOnlyK1) {
  RunCase(/*k=*/1, kInf, /*num_del=*/0, /*num_ins=*/12, /*seed=*/101);
}

TEST(MaintainTest, InsertsOnlyK4) {
  MaintainStats stats;
  RunCase(/*k=*/4, kInf, /*num_del=*/0, /*num_ins=*/12, /*seed=*/103,
          &stats);
  // Insert-only damage repairs by merge; nothing may trigger a re-query.
  EXPECT_EQ(stats.requeried, 0u);
  EXPECT_GT(stats.merged, 0u);
  EXPECT_EQ(stats.merged, stats.insert_affected);
  // The aggregate bound must prune most of IR for a 12-point batch.
  EXPECT_GT(stats.probe_node_prunes, 0u);
}

TEST(MaintainTest, DeletesOnlyK1) {
  MaintainStats stats;
  RunCase(/*k=*/1, kInf, /*num_del=*/15, /*num_ins=*/0, /*seed=*/105,
          &stats);
  EXPECT_EQ(stats.merged, 0u);
  EXPECT_GT(stats.requeried, 0u);
  EXPECT_EQ(stats.requeried, stats.delete_affected);
}

TEST(MaintainTest, DeletesOnlyK4) {
  RunCase(/*k=*/4, kInf, /*num_del=*/15, /*num_ins=*/0, /*seed=*/107);
}

TEST(MaintainTest, MixedK3) {
  RunCase(/*k=*/3, kInf, /*num_del=*/10, /*num_ins=*/10, /*seed=*/109);
}

TEST(MaintainTest, MixedBoundedMaxDistance) {
  // Short lists (bound = max_distance) must grow when an in-range point
  // arrives and never admit out-of-range ones.
  RunCase(/*k=*/3, /*max_distance=*/0.05, /*num_del=*/10, /*num_ins=*/10,
          /*seed=*/111);
}

TEST(MaintainTest, LargeBatchMixed) {
  RunCase(/*k=*/2, kInf, /*num_del=*/60, /*num_ins=*/60, /*seed=*/113);
}

TEST(MaintainTest, EmptyBatchIsANoOp) {
  MaintainFixture f = MakeFixture(100, 150, 117);
  AnnOptions opts;
  opts.k = 2;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  std::vector<NeighborList> before = results;
  MaintainStats stats;
  ASSERT_OK(MaintainAllNn(*f.ir, *f.is, opts, UpdateBatch(2), &results,
                          &stats));
  SortByQueryId(&before);
  SortByQueryId(&results);
  ExpectSameResults(results, before);
  EXPECT_EQ(stats.requeried, 0u);
  EXPECT_EQ(stats.merged, 0u);
}

TEST(MaintainTest, MissingResultListFails) {
  MaintainFixture f = MakeFixture(50, 80, 119);
  AnnOptions opts;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  SortByQueryId(&results);
  results.pop_back();  // orphan one IR object
  UpdateBatch batch(2);
  const Scalar p[2] = {0.5, 0.5};
  batch.AddInsert(p, kInsertIdBase);
  ASSERT_OK(f.s_tree->Insert(p, kInsertIdBase));
  const Status st = MaintainAllNn(*f.ir, *f.is, opts, batch, &results);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(MaintainTest, DuplicateResultListFails) {
  MaintainFixture f = MakeFixture(50, 80, 121);
  AnnOptions opts;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  results.push_back(results.front());
  UpdateBatch batch(2);
  const Scalar p[2] = {0.5, 0.5};
  batch.AddInsert(p, kInsertIdBase);
  ASSERT_OK(f.s_tree->Insert(p, kInsertIdBase));
  const Status st = MaintainAllNn(*f.ir, *f.is, opts, batch, &results);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

// ---------------------------------------------------------------------------
// Error-path atomicity: a maintenance pass that fails partway must leave
// the standing results byte-for-byte untouched (maintain.h contract).
// ---------------------------------------------------------------------------

/// Forwards to an inner index but fails every expansion past a budget
/// with Status::Internal — an index going bad mid-maintenance. `used()`
/// after an unlimited run tells a test how many expansions a successful
/// pass needs, so a second run can be made to fail at any chosen point.
class FailAfterExpand final : public SpatialIndex {
 public:
  FailAfterExpand(const SpatialIndex* inner, size_t budget)
      : inner_(inner), budget_(budget) {}

  int dim() const override { return inner_->dim(); }
  IndexEntry Root() const override { return inner_->Root(); }
  int height() const override { return inner_->height(); }
  uint64_t num_objects() const override { return inner_->num_objects(); }
  Result<IndexSnapshot> OpenSnapshot() const override {
    return inner_->OpenSnapshot();
  }

  Status Expand(const IndexSnapshot& snap, const IndexEntry& e,
                std::vector<IndexEntry>* out) const override {
    ANN_RETURN_NOT_OK(Charge());
    return inner_->Expand(snap, e, out);
  }
  Status ExpandBatch(const IndexSnapshot& snap, const IndexEntry& e,
                     std::vector<IndexEntry>* entries, LeafBlock* block,
                     bool* is_leaf_block) const override {
    ANN_RETURN_NOT_OK(Charge());
    return inner_->ExpandBatch(snap, e, entries, block, is_leaf_block);
  }
  using SpatialIndex::Expand;
  using SpatialIndex::ExpandBatch;

  size_t used() const { return used_; }

 private:
  Status Charge() const {
    if (used_ >= budget_) {
      return Status::Internal("injected expand failure");
    }
    ++used_;
    return Status::OK();
  }

  const SpatialIndex* inner_;
  size_t budget_;
  mutable size_t used_ = 0;
};

/// Exact comparison, distances by memcmp: "untouched" means bit-identical,
/// not merely numerically close.
void ExpectBitIdentical(const std::vector<NeighborList>& got,
                        const std::vector<NeighborList>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].r_id, want[i].r_id);
    const std::vector<Neighbor>& g = got[i].neighbors;
    const std::vector<Neighbor>& w = want[i].neighbors;
    ASSERT_EQ(g.size(), w.size()) << "list " << got[i].r_id;
    for (size_t j = 0; j < g.size(); ++j) {
      EXPECT_EQ(g[j].first, w[j].first)
          << "list " << got[i].r_id << " slot " << j;
      EXPECT_EQ(std::memcmp(&g[j].second, &w[j].second, sizeof(Scalar)), 0)
          << "list " << got[i].r_id << " slot " << j;
    }
  }
}

TEST(MaintainTest, ErrorMidRequeryLeavesResultsUntouched) {
  MaintainFixture f = MakeFixture(120, 200, 131);
  AnnOptions opts;
  opts.k = 3;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  SortByQueryId(&results);
  const std::vector<NeighborList> before = results;

  const UpdateBatch batch =
      MakeAndApplyBatch(&f, /*num_del=*/12, /*num_ins=*/0, 133);

  // Count the S-side expansions one successful pass needs.
  FailAfterExpand counting(f.is.get(), static_cast<size_t>(-1));
  std::vector<NeighborList> repaired = before;
  ASSERT_OK(MaintainAllNn(*f.ir, counting, opts, batch, &repaired));
  ASSERT_GT(counting.used(), 1u);

  // Fail on the very first expand, mid-pass, and on the last one (every
  // earlier requery already staged): the standing results must come back
  // bit-identical in all three cases.
  for (size_t budget :
       {static_cast<size_t>(0), counting.used() / 2, counting.used() - 1}) {
    FailAfterExpand failing(f.is.get(), budget);
    std::vector<NeighborList> standing = before;
    const Status st = MaintainAllNn(*f.ir, failing, opts, batch, &standing);
    ASSERT_FALSE(st.ok()) << "budget=" << budget;
    EXPECT_TRUE(st.IsInternal()) << st.ToString();
    ExpectBitIdentical(standing, before);
  }
}

TEST(MaintainTest, ErrorMidRepairDoesNotPartiallyMerge) {
  MaintainFixture f = MakeFixture(150, 250, 137);
  AnnOptions opts;
  opts.k = 2;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &results));
  SortByQueryId(&results);
  const std::vector<NeighborList> before = results;

  // Mixed batch: some lists repair by requery (which expands S and can
  // fail), others by a pure sorted merge (which cannot). A failure in the
  // last requery must not leak the merges staged alongside it either.
  const UpdateBatch batch =
      MakeAndApplyBatch(&f, /*num_del=*/10, /*num_ins=*/10, 139);

  FailAfterExpand counting(f.is.get(), static_cast<size_t>(-1));
  std::vector<NeighborList> repaired = before;
  MaintainStats stats;
  ASSERT_OK(MaintainAllNn(*f.ir, counting, opts, batch, &repaired, &stats));
  ASSERT_GT(stats.merged, 0u);     // both repair kinds must be in play
  ASSERT_GT(stats.requeried, 0u);

  FailAfterExpand failing(f.is.get(), counting.used() - 1);
  std::vector<NeighborList> standing = before;
  const Status st = MaintainAllNn(*f.ir, failing, opts, batch, &standing);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  ExpectBitIdentical(standing, before);

  // Because nothing was partially merged, the same pass simply retries
  // once the index behaves — and lands on the full recomputation.
  ASSERT_OK(MaintainAllNn(*f.ir, *f.is, opts, batch, &standing));
  std::vector<NeighborList> expected;
  ASSERT_OK(AllNearestNeighbors(*f.ir, *f.is, opts, &expected));
  SortByQueryId(&expected);
  SortByQueryId(&standing);
  ExpectSameResults(standing, expected);
}

TEST(MaintainTest, PoisonedWriterKeepsStandingResultsUsable) {
  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  NodeStore store(&pool);

  Rect space;
  space.dim = 2;
  for (int d = 0; d < 2; ++d) {
    space.lo[d] = 0;
    space.hi[d] = 1;
  }

  const Dataset r_data = RandomDataset(2, 80, 141);
  MbrqtOptions qopts;
  qopts.bucket_capacity = 8;
  auto built = Mbrqt::Build(r_data, qopts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Mbrqt r_tree = std::move(built).value();
  const MemIndexView ir(&r_tree.Finalize());

  const Dataset s_data = RandomDataset(2, 120, 142);
  MbrqtOptions sopts;
  sopts.bucket_capacity = 8;
  Mbrqt s_builder(space, sopts);
  for (size_t i = 0; i < s_data.size(); ++i) {
    ASSERT_OK(s_builder.Insert(s_data.point(i), i));
  }
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<DynamicIndex> s_index,
                       DynamicIndex::Create(std::move(s_builder), &store));

  AnnOptions opts;
  opts.k = 3;
  std::vector<NeighborList> results;
  ASSERT_OK(AllNearestNeighbors(ir, *s_index, opts, &results));
  SortByQueryId(&results);
  const std::vector<NeighborList> before = results;

  // A batch that fails mid-apply: the first delete is valid (and mutates
  // the builder), the second names an absent id. The writer poisons
  // without publishing, so committed reads keep serving the old tree.
  UpdateBatch bad(2);
  bad.AddDelete(s_data.point(0), 0);
  const Scalar nowhere[2] = {0.321, 0.654};
  bad.AddDelete(nowhere, 999999);
  const Status first = s_index->ApplyBatch(bad);
  ASSERT_FALSE(first.ok());

  // A fresh All-NN recomputation over the poisoned index reproduces the
  // standing results bit-for-bit: reads are unaffected by the poison.
  std::vector<NeighborList> recomputed;
  ASSERT_OK(AllNearestNeighbors(ir, *s_index, opts, &recomputed));
  SortByQueryId(&recomputed);
  ExpectBitIdentical(recomputed, before);

  // The failed batch never committed, so it must NOT be fed to
  // MaintainAllNn; the no-change maintenance pass is an exact no-op.
  ASSERT_OK(MaintainAllNn(ir, *s_index, opts, UpdateBatch(2), &results));
  ExpectBitIdentical(results, before);

  // And the writer stays poisoned with the original error code.
  UpdateBatch good(2);
  const Scalar p[2] = {0.5, 0.5};
  good.AddInsert(p, kInsertIdBase);
  const Status second = s_index->ApplyBatch(good);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), first.code());
}

}  // namespace
}  // namespace ann
