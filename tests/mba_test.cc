#include "ann/mba.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ann/brute_force.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

enum class IndexKind { kMbrqt, kRstar };

const char* ToString(IndexKind k) {
  return k == IndexKind::kMbrqt ? "MBRQT" : "RSTAR";
}

/// Owns a built tree plus its SpatialIndex view.
struct BuiltIndex {
  std::unique_ptr<Mbrqt> qt;
  std::unique_ptr<RStarTree> rt;
  MemTree tree;  // for the quadtree case Finalize() result is copied here
  std::unique_ptr<MemIndexView> view;
};

BuiltIndex BuildIndex(IndexKind kind, const Dataset& data) {
  BuiltIndex out;
  if (kind == IndexKind::kMbrqt) {
    MbrqtOptions opts;
    opts.bucket_capacity = 16;
    auto res = Mbrqt::Build(data, opts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    out.qt = std::make_unique<Mbrqt>(std::move(res).value());
    out.view = std::make_unique<MemIndexView>(&out.qt->Finalize());
  } else {
    RStarOptions opts;
    opts.leaf_capacity = 16;
    opts.internal_capacity = 8;
    auto res = RStarTree::BulkLoadStr(data, opts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    out.rt = std::make_unique<RStarTree>(std::move(res).value());
    out.view = std::make_unique<MemIndexView>(&out.rt->tree());
  }
  return out;
}

struct Config {
  IndexKind index;
  PruneMetric metric;
  Traversal traversal;
  Expansion expansion;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return std::string(ToString(c.index)) + "_" + ToString(c.metric) + "_" +
         ToString(c.traversal) + "_" + ToString(c.expansion);
}

class AnnConfigTest : public ::testing::TestWithParam<Config> {
 protected:
  void RunAndCheck(const Dataset& r, const Dataset& s, int k) {
    const Config& c = GetParam();
    const BuiltIndex ir = BuildIndex(c.index, r);
    const BuiltIndex is = BuildIndex(c.index, s);
    AnnOptions opts;
    opts.metric = c.metric;
    opts.traversal = c.traversal;
    opts.expansion = c.expansion;
    opts.k = k;
    std::vector<NeighborList> got;
    PruneStats stats;
    ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, opts, &got, &stats));
    EXPECT_EQ(got.size(), r.size());
    EXPECT_GT(stats.lpqs_created, 0u);
    ExpectExactAknn(r, s, k, std::move(got));
  }
};

TEST_P(AnnConfigTest, Ann2DUniform) {
  const Dataset r = RandomDataset(2, 700, 1);
  const Dataset s = RandomDataset(2, 900, 2);
  RunAndCheck(r, s, 1);
}

TEST_P(AnnConfigTest, Ann3DUniform) {
  const Dataset r = RandomDataset(3, 500, 3);
  const Dataset s = RandomDataset(3, 600, 4);
  RunAndCheck(r, s, 1);
}

TEST_P(AnnConfigTest, Ann6DUniform) {
  const Dataset r = RandomDataset(6, 300, 5);
  const Dataset s = RandomDataset(6, 400, 6);
  RunAndCheck(r, s, 1);
}

TEST_P(AnnConfigTest, AnnClusteredData) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 1200;
  spec.distribution = Distribution::kClustered;
  spec.clusters = 10;
  spec.seed = 7;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  RunAndCheck(r, s, 1);
}

TEST_P(AnnConfigTest, AnnSkewedData) {
  GstdSpec spec;
  spec.dim = 3;
  spec.count = 800;
  spec.distribution = Distribution::kZipfSkewed;
  spec.seed = 8;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  RunAndCheck(r, s, 1);
}

TEST_P(AnnConfigTest, SelfJoinReportsSelfAtDistanceZero) {
  // R == S: the nearest neighbor of each point is itself at distance 0.
  const Dataset d = RandomDataset(2, 400, 9);
  RunAndCheck(d, d, 1);
}

TEST_P(AnnConfigTest, Aknn5) {
  const Dataset r = RandomDataset(2, 400, 10);
  const Dataset s = RandomDataset(2, 500, 11);
  RunAndCheck(r, s, 5);
}

TEST_P(AnnConfigTest, Aknn16) {
  const Dataset r = RandomDataset(3, 250, 12);
  const Dataset s = RandomDataset(3, 350, 13);
  RunAndCheck(r, s, 16);
}

TEST_P(AnnConfigTest, KLargerThanTargetSet) {
  const Dataset r = RandomDataset(2, 50, 14);
  const Dataset s = RandomDataset(2, 7, 15);
  RunAndCheck(r, s, 10);  // only 7 neighbors exist
}

TEST_P(AnnConfigTest, SinglePointSets) {
  const Dataset r = RandomDataset(2, 1, 16);
  const Dataset s = RandomDataset(2, 1, 17);
  RunAndCheck(r, s, 1);
}

TEST_P(AnnConfigTest, DuplicateHeavyData) {
  Rng rng(18);
  Dataset r(2), s(2);
  for (int i = 0; i < 300; ++i) {
    const Scalar p[2] = {rng.UniformInt(5) * 0.2, rng.UniformInt(5) * 0.2};
    r.Append(p);
    const Scalar q[2] = {rng.UniformInt(5) * 0.2, rng.UniformInt(5) * 0.2};
    s.Append(q);
  }
  RunAndCheck(r, s, 3);
}

TEST_P(AnnConfigTest, AsymmetricSizes) {
  const Dataset r = RandomDataset(2, 2000, 19);
  const Dataset s = RandomDataset(2, 60, 20);
  RunAndCheck(r, s, 2);
}

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (IndexKind index : {IndexKind::kMbrqt, IndexKind::kRstar}) {
    for (PruneMetric metric :
         {PruneMetric::kNxnDist, PruneMetric::kMaxMaxDist}) {
      for (Traversal traversal :
           {Traversal::kDepthFirst, Traversal::kBreadthFirst}) {
        for (Expansion expansion :
             {Expansion::kBidirectional, Expansion::kUnidirectional}) {
          configs.push_back({index, metric, traversal, expansion});
        }
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, AnnConfigTest,
                         ::testing::ValuesIn(AllConfigs()), ConfigName);

TEST(AnnTest, RejectsDimMismatch) {
  const Dataset r = RandomDataset(2, 10, 1);
  const Dataset s = RandomDataset(3, 10, 2);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);
  std::vector<NeighborList> out;
  EXPECT_TRUE(AllNearestNeighbors(*ir.view, *is.view, AnnOptions{}, &out)
                  .IsInvalidArgument());
}

TEST(AnnTest, RejectsBadK) {
  const Dataset d = RandomDataset(2, 10, 3);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, d);
  AnnOptions opts;
  opts.k = 0;
  std::vector<NeighborList> out;
  EXPECT_TRUE(AllNearestNeighbors(*ir.view, *ir.view, opts, &out)
                  .IsInvalidArgument());
}

TEST(AnnTest, NxnPrunesNoWorseThanMaxMax) {
  // Same traversal, same indexes: the tighter metric must enqueue no more
  // entries (Section 4.3's explanation of the speedup).
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 4000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 31;
  ASSERT_OK_AND_ASSIGN(const Dataset all, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(all, &r, &s);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  PruneStats nxn, maxmax;
  std::vector<NeighborList> out;
  AnnOptions opts;
  opts.metric = PruneMetric::kNxnDist;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, opts, &out, &nxn));
  out.clear();
  opts.metric = PruneMetric::kMaxMaxDist;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, opts, &out, &maxmax));
  EXPECT_LT(nxn.enqueued, maxmax.enqueued);
  EXPECT_LT(nxn.distance_evals, maxmax.distance_evals);
}

TEST(AnnTest, StreamingSinkSeesEveryResultOnce) {
  const Dataset r = RandomDataset(2, 400, 40);
  const Dataset s = RandomDataset(2, 400, 41);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  std::vector<NeighborList> streamed;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, AnnOptions{},
                                [&streamed](NeighborList&& list) {
                                  streamed.push_back(std::move(list));
                                  return Status::OK();
                                }));
  ExpectExactAknn(r, s, 1, std::move(streamed));
}

TEST(AnnTest, SinkErrorAbortsTheRun) {
  const Dataset r = RandomDataset(2, 200, 42);
  const Dataset s = RandomDataset(2, 200, 43);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);

  int seen = 0;
  const Status st = AllNearestNeighbors(
      *ir.view, *is.view, AnnOptions{}, [&seen](NeighborList&&) {
        if (++seen >= 10) return Status::Internal("stop here");
        return Status::OK();
      });
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(seen, 10);  // nothing delivered after the error
}

TEST(AnnEpsilonTest, NegativeEpsilonRejected) {
  const Dataset r = RandomDataset(2, 10, 1);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  AnnOptions opts;
  opts.epsilon = -0.5;
  std::vector<NeighborList> out;
  EXPECT_TRUE(AllNearestNeighbors(*ir.view, *ir.view, opts, &out)
                  .IsInvalidArgument());
}

TEST(AnnEpsilonTest, ZeroEpsilonIsBitIdenticalToExact) {
  const Dataset r = RandomDataset(2, 400, 35);
  const Dataset s = RandomDataset(2, 500, 36);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);
  AnnOptions exact_opts;
  exact_opts.k = 3;
  PruneStats exact_stats;
  std::vector<NeighborList> exact;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, exact_opts, &exact,
                                &exact_stats));
  AnnOptions zero = exact_opts;
  zero.epsilon = 0;  // the explicit zero must take the exact path, bitwise
  PruneStats zero_stats;
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, zero, &got, &zero_stats));
  EXPECT_EQ(zero_stats.ToString(), exact_stats.ToString());
  ASSERT_EQ(got.size(), exact.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].r_id, exact[i].r_id);
    ASSERT_EQ(got[i].neighbors.size(), exact[i].neighbors.size());
    for (size_t j = 0; j < got[i].neighbors.size(); ++j) {
      EXPECT_EQ(got[i].neighbors[j].first, exact[i].neighbors[j].first);
      // Bitwise: epsilon = 0 multiplies bounds by exactly 1.0.
      EXPECT_EQ(got[i].neighbors[j].second, exact[i].neighbors[j].second);
    }
  }
}

TEST(AnnEpsilonTest, ApproximateDistancesWithinOnePlusEpsilon) {
  const Dataset r = RandomDataset(2, 500, 37);
  const Dataset s = RandomDataset(2, 700, 38);
  for (const IndexKind kind : {IndexKind::kMbrqt, IndexKind::kRstar}) {
    const BuiltIndex ir = BuildIndex(kind, r);
    const BuiltIndex is = BuildIndex(kind, s);
    AnnOptions exact_opts;
    exact_opts.k = 3;
    PruneStats exact_stats;
    std::vector<NeighborList> exact;
    ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, exact_opts, &exact,
                                  &exact_stats));
    SortByQueryId(&exact);
    for (const Scalar eps : {0.1, 0.5, 2.0}) {
      AnnOptions opts = exact_opts;
      opts.epsilon = eps;
      PruneStats stats;
      std::vector<NeighborList> got;
      ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, opts, &got, &stats));
      SortByQueryId(&got);
      ASSERT_EQ(got.size(), exact.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].r_id, exact[i].r_id);
        // Aggressive pruning may shorten a list (as max_distance does),
        // never lengthen it; each returned rank obeys the (1+eps) factor.
        ASSERT_LE(got[i].neighbors.size(), exact[i].neighbors.size());
        for (size_t j = 0; j < got[i].neighbors.size(); ++j) {
          const Scalar d_exact = exact[i].neighbors[j].second;
          const Scalar d_got = got[i].neighbors[j].second;
          EXPECT_LE(d_got, (1 + eps) * d_exact + 1e-9)
              << ToString(kind) << " eps=" << eps << " r=" << got[i].r_id
              << " j=" << j;
        }
      }
      // The looser bound must never prune less than the exact run.
      EXPECT_LE(stats.enqueued, exact_stats.enqueued) << "eps=" << eps;
    }
  }
}

TEST(AnnTest, StatsAreConsistent) {
  const Dataset r = RandomDataset(2, 500, 33);
  const Dataset s = RandomDataset(2, 500, 34);
  const BuiltIndex ir = BuildIndex(IndexKind::kMbrqt, r);
  const BuiltIndex is = BuildIndex(IndexKind::kMbrqt, s);
  PruneStats stats;
  std::vector<NeighborList> out;
  ASSERT_OK(AllNearestNeighbors(*ir.view, *is.view, AnnOptions{}, &out,
                                &stats));
  EXPECT_EQ(stats.enqueued + stats.pruned_on_entry, stats.enqueue_attempts);
  EXPECT_GE(stats.lpqs_created, r.size());  // one per object + internals
  EXPECT_GT(stats.r_nodes_expanded, 0u);
  EXPECT_GT(stats.s_nodes_expanded, 0u);
}

}  // namespace
}  // namespace ann
