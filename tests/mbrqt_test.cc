#include "index/mbrqt/mbrqt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/gstd.h"
#include "index/paged_index_view.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<uint64_t> BruteRange(const Dataset& data, const Rect& range) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (range.ContainsPoint(data.point(i))) out.push_back(i);
  }
  return out;
}

void ExpectRangeQueriesMatch(const SpatialIndex& index, const Dataset& data,
                             uint64_t seed, int queries = 25) {
  Rng rng(seed);
  for (int q = 0; q < queries; ++q) {
    const Rect range = RandomRect(data.dim(), &rng);
    std::vector<uint64_t> got;
    ASSERT_OK(RangeQuery(index, range, &got));
    std::vector<uint64_t> want = BruteRange(data, range);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(MbrqtTest, CubicCellIsSquareAndCovers) {
  const Scalar lo[2] = {0, 0}, hi[2] = {4, 1};
  const Rect box = Rect::FromBounds(lo, hi, 2);
  const Rect cell = Mbrqt::CubicCell(box);
  EXPECT_TRUE(cell.ContainsRect(box));
  EXPECT_NEAR(cell.hi[0] - cell.lo[0], cell.hi[1] - cell.lo[1], 1e-9);
  EXPECT_GE(cell.hi[0] - cell.lo[0], 4.0);
}

TEST(MbrqtTest, InsertOutsideRootCellFails) {
  const Scalar lo[2] = {0, 0}, hi[2] = {1, 1};
  Mbrqt qt(Rect::FromBounds(lo, hi, 2));
  const Scalar p[2] = {2, 2};
  EXPECT_TRUE(qt.Insert(p, 0).IsOutOfRange());
}

TEST(MbrqtTest, EmptyBuildRejected) {
  EXPECT_FALSE(Mbrqt::Build(Dataset(2)).ok());
}

class MbrqtBuildTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(MbrqtBuildTest, InvariantsAndRangeQueries) {
  const auto [dim, count] = GetParam();
  const Dataset data = RandomDataset(dim, count, 300 + dim);
  MbrqtOptions opts;
  opts.bucket_capacity = 16;  // force deep decomposition
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  EXPECT_EQ(qt.num_objects(), data.size());
  ASSERT_OK(qt.CheckInvariants());

  const MemTree& tree = qt.Finalize();
  EXPECT_EQ(tree.num_objects, data.size());
  EXPECT_GT(tree.height, 1);
  const MemIndexView view(&tree);
  ExpectRangeQueriesMatch(view, data, 17);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, MbrqtBuildTest,
    ::testing::Values(std::make_tuple(2, 3000), std::make_tuple(3, 2000),
                      std::make_tuple(6, 1000), std::make_tuple(10, 600)));

/// Recursively asserts two finalized subtrees are identical: node kind,
/// tight MBR, and the full entry list in order (object ids for leaves,
/// child subtrees for internals). Node *indices* may differ between the
/// builders — the insert path numbers nodes by split order, the bulk
/// path by depth-first discovery — so the comparison follows child links
/// instead of comparing the node arrays positionally.
void ExpectSameSubtree(const MemTree& a, int32_t ai, const MemTree& b,
                       int32_t bi) {
  const MemNode& na = a.nodes[static_cast<size_t>(ai)];
  const MemNode& nb = b.nodes[static_cast<size_t>(bi)];
  ASSERT_EQ(na.is_leaf, nb.is_leaf);
  ASSERT_TRUE(na.mbr == nb.mbr);
  ASSERT_EQ(na.entries.size(), nb.entries.size());
  for (size_t i = 0; i < na.entries.size(); ++i) {
    ASSERT_TRUE(na.entries[i].mbr == nb.entries[i].mbr);
    if (na.is_leaf) {
      ASSERT_EQ(na.entries[i].id, nb.entries[i].id);
    } else {
      ExpectSameSubtree(a, na.entries[i].child, b, nb.entries[i].child);
    }
  }
}

TEST_P(MbrqtBuildTest, BulkLoadBuildsTheIdenticalTree) {
  const auto [dim, count] = GetParam();
  const Dataset data = RandomDataset(dim, count, 300 + dim);
  MbrqtOptions opts;
  opts.bucket_capacity = 16;
  ASSERT_OK_AND_ASSIGN(Mbrqt inserted, Mbrqt::Build(data, opts));
  ASSERT_OK_AND_ASSIGN(Mbrqt bulk, Mbrqt::BulkLoad(data, opts));
  EXPECT_EQ(bulk.num_objects(), data.size());
  ASSERT_OK(bulk.CheckInvariants());

  const MemTree& want = inserted.Finalize();
  const MemTree& got = bulk.Finalize();
  EXPECT_EQ(got.height, want.height);
  EXPECT_EQ(got.num_objects, want.num_objects);
  ExpectSameSubtree(want, want.root, got, got.root);

  const MemIndexView view(&got);
  ExpectRangeQueriesMatch(view, data, 17);
}

TEST(MbrqtTest, BulkLoadRespectsMaxDepthOnCoincidentPoints) {
  // All points coincident: decomposition cannot separate them, so the
  // leaf at max_depth must be allowed to overflow — same rule as Insert.
  Dataset data(2);
  const Scalar p[2] = {0.5, 0.5};
  for (int i = 0; i < 40; ++i) data.Append(p);
  MbrqtOptions opts;
  opts.bucket_capacity = 4;
  opts.max_depth = 6;
  ASSERT_OK_AND_ASSIGN(Mbrqt bulk, Mbrqt::BulkLoad(data, opts));
  ASSERT_OK(bulk.CheckInvariants());
  ASSERT_OK_AND_ASSIGN(Mbrqt inserted, Mbrqt::Build(data, opts));
  ExpectSameSubtree(inserted.Finalize(), inserted.Finalize().root,
                    bulk.Finalize(), bulk.Finalize().root);
}

TEST(MbrqtTest, BulkLoadRejectsEmptyDataset) {
  EXPECT_FALSE(Mbrqt::BulkLoad(Dataset(2)).ok());
}

TEST(MbrqtTest, InternalMbrsAreTightNotCells) {
  // With clustered data internal MBRs must be much smaller than the cells
  // they decompose — that is the entire point of the MBR enhancement.
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 5000;
  spec.distribution = Distribution::kClustered;
  spec.clusters = 6;
  spec.cluster_sigma = 0.005;
  spec.seed = 9;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  MbrqtOptions opts;
  opts.bucket_capacity = 32;
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  ASSERT_OK(qt.CheckInvariants());
  const MemTree& tree = qt.Finalize();
  // Root MBR area must be well below the (square) root cell area.
  const Rect root_cell = Mbrqt::CubicCell(data.BoundingBox());
  EXPECT_LT(tree.nodes[tree.root].mbr.Area(), root_cell.Area());
}

TEST(MbrqtTest, DuplicatePointsRespectMaxDepthOverflow) {
  MbrqtOptions opts;
  opts.bucket_capacity = 4;
  opts.max_depth = 6;
  const Scalar lo[2] = {0, 0}, hi[2] = {1, 1};
  Mbrqt qt(Rect::FromBounds(lo, hi, 2), opts);
  const Scalar p[2] = {0.3, 0.3};
  for (int i = 0; i < 200; ++i) ASSERT_OK(qt.Insert(p, i));
  ASSERT_OK(qt.CheckInvariants());
  const MemTree& tree = qt.Finalize();
  EXPECT_LE(tree.height, opts.max_depth + 1);
  const MemIndexView view(&tree);
  std::vector<uint64_t> got;
  ASSERT_OK(RangeQuery(view, Rect::FromPoint(p, 2), &got));
  EXPECT_EQ(got.size(), 200u);
}

TEST(MbrqtTest, FinalizeDropsEmptyQuadrants) {
  const Dataset data = RandomDataset(2, 2000, 4);
  MbrqtOptions opts;
  opts.bucket_capacity = 8;
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  const MemTree& tree = qt.Finalize();
  for (const MemNode& node : tree.nodes) {
    if (node.is_leaf) continue;
    for (const MemEntry& e : node.entries) {
      EXPECT_GE(e.child, 0);
      EXPECT_FALSE(tree.nodes[e.child].mbr.IsEmpty());
      // Child MBR contained in parent MBR.
      EXPECT_TRUE(node.mbr.ContainsRect(tree.nodes[e.child].mbr));
    }
  }
}

TEST(MbrqtTest, HighDimensionalNodesMayExceedOnePage) {
  // 10-D quadtrees can have up to 1024 children per node; the persisted
  // node then spans multiple pages via the NodeStore chain. Verify the
  // round trip stays correct.
  const Dataset data = RandomDataset(10, 4000, 55);
  MbrqtOptions opts;
  opts.bucket_capacity = 8;  // force wide internal fanout
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  const MemTree& tree = qt.Finalize();
  size_t max_fanout = 0;
  for (const MemNode& node : tree.nodes) {
    if (!node.is_leaf) max_fanout = std::max(max_fanout, node.entries.size());
  }
  EXPECT_GT(max_fanout, 40u);  // genuinely wide

  MemDiskManager disk;
  BufferPool pool(&disk, 512);
  NodeStore store(&pool);
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta,
                       PersistMemTree(tree, &store));
  const PagedIndexView paged(&store, meta);
  ExpectRangeQueriesMatch(paged, data, 66, /*queries=*/10);
}

TEST(MbrqtTest, PersistedViewMatchesMemView) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 4000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 23;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
  const MemTree& tree = qt.Finalize();

  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  NodeStore store(&pool);
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta,
                       PersistMemTree(tree, &store));
  EXPECT_EQ(meta.height, tree.height);
  const PagedIndexView paged(&store, meta);
  ExpectRangeQueriesMatch(paged, data, 44);
}

TEST(MbrqtTest, DefaultBucketCapacityFillsAPage) {
  EXPECT_EQ(DefaultBucketCapacity(2), 8176 / 24);
  EXPECT_EQ(DefaultBucketCapacity(10), 8176 / 88);
}

}  // namespace
}  // namespace ann
