#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

// ---------------------------------------------------------------------------
// One-dimensional helpers.
// ---------------------------------------------------------------------------

TEST(Metrics1DTest, MaxDistCoversWorstEndpointPair) {
  EXPECT_DOUBLE_EQ(MaxDist1(0, 1, 2, 3), 3);    // disjoint
  EXPECT_DOUBLE_EQ(MaxDist1(0, 4, 1, 2), 3);    // contained: 4 -> 1
  EXPECT_DOUBLE_EQ(MaxDist1(0, 2, 1, 3), 3);    // overlapping
  EXPECT_DOUBLE_EQ(MaxDist1(1, 1, 1, 1), 0);    // identical points
}

TEST(Metrics1DTest, MinDistZeroOnOverlap) {
  EXPECT_DOUBLE_EQ(MinDist1(0, 2, 1, 3), 0);
  EXPECT_DOUBLE_EQ(MinDist1(0, 1, 3, 5), 2);
  EXPECT_DOUBLE_EQ(MinDist1(3, 5, 0, 1), 2);
}

TEST(Metrics1DTest, MinFaceIsClosestEndpointPair) {
  EXPECT_DOUBLE_EQ(MinFace1(0, 1, 3, 6), 2);  // |1-3|
  EXPECT_DOUBLE_EQ(MinFace1(0, 4, 1, 2), 1);  // |0-1|
}

// Brute-force evaluation of Definition 3.1 by dense sweep over p in M.
Scalar MaxMin1Sweep(Scalar mlo, Scalar mhi, Scalar nlo, Scalar nhi) {
  Scalar best = 0;
  const int steps = 2000;
  for (int i = 0; i <= steps; ++i) {
    const Scalar p = mlo + (mhi - mlo) * i / steps;
    best = std::max(best, std::min(std::abs(p - nlo), std::abs(p - nhi)));
  }
  return best;
}

TEST(Metrics1DTest, MaxMinMatchesDenseSweep) {
  Rng rng(2);
  for (int iter = 0; iter < 300; ++iter) {
    Scalar a = rng.Uniform(-2, 2), b = rng.Uniform(-2, 2);
    Scalar c = rng.Uniform(-2, 2), d = rng.Uniform(-2, 2);
    if (a > b) std::swap(a, b);
    if (c > d) std::swap(c, d);
    EXPECT_NEAR(MaxMin1(a, b, c, d), MaxMin1Sweep(a, b, c, d), 1e-3);
  }
}

TEST(Metrics1DTest, MaxMinPeaksAtEndpointsOrMidpoint) {
  // M = [0,10], N = [4,6]: the worst query point is an end of M (distance
  // 4 to the nearer face); the midpoint candidate (value 1) loses.
  EXPECT_DOUBLE_EQ(MaxMin1(0, 10, 4, 6), 4);
  // N == M: the worst query point is N's midpoint.
  EXPECT_DOUBLE_EQ(MaxMin1(0, 10, 0, 10), 5);
  // M far to the left of N: worst point is M's left end, nearest face is
  // N's lower face.
  EXPECT_DOUBLE_EQ(MaxMin1(-5, -3, 0, 2), 5);
}

// ---------------------------------------------------------------------------
// Rect-to-rect metrics on hand-constructed figures.
// ---------------------------------------------------------------------------

Rect MakeRect2(Scalar lx, Scalar ly, Scalar hx, Scalar hy) {
  const Scalar lo[2] = {lx, ly}, hi[2] = {hx, hy};
  return Rect::FromBounds(lo, hi, 2);
}

TEST(MetricsRectTest, DisjointSquares) {
  // M = [0,1]^2, N = [3,4]x[0,1].
  const Rect m = MakeRect2(0, 0, 1, 1);
  const Rect n = MakeRect2(3, 0, 4, 1);
  EXPECT_DOUBLE_EQ(MinMinDist2(m, n), 4);        // gap of 2 in x
  EXPECT_DOUBLE_EQ(MaxMaxDist2(m, n), 16 + 1);   // corners (0,0)-(4,1)
  // NXNDIST: MAXDIST_x = 4, MAXDIST_y = 1; MAXMIN_x = |0-3| = 3 vs
  // candidates {f(0)=3, f(1)=2, mid 3.5 not in M} -> 3; MAXMIN_y: N spans
  // same y-range so worst point is the middle: 0.5.
  // S = 16 + 1 = 17; gains: x: 16 - 9 = 7, y: 1 - 0.25 = 0.75.
  // NXNDIST^2 = 17 - 7 = 10.
  EXPECT_DOUBLE_EQ(NxnDist2(m, n), 10);
  // Ordering of Figure 2(a).
  EXPECT_LE(MinMinDist2(m, n), MinMaxDist2(m, n));
  EXPECT_LE(MinMaxDist2(m, n), NxnDist2(m, n));
  EXPECT_LE(NxnDist2(m, n), MaxMaxDist2(m, n));
}

TEST(MetricsRectTest, DegenerateRectsCollapseToPointDistance) {
  const Scalar p[3] = {1, 2, 3};
  const Scalar q[3] = {4, 6, 3};
  const Rect mp = Rect::FromPoint(p, 3);
  const Rect nq = Rect::FromPoint(q, 3);
  const Scalar d2 = PointDist2(p, q, 3);
  EXPECT_DOUBLE_EQ(MinMinDist2(mp, nq), d2);
  EXPECT_DOUBLE_EQ(MaxMaxDist2(mp, nq), d2);
  EXPECT_DOUBLE_EQ(NxnDist2(mp, nq), d2);
  EXPECT_DOUBLE_EQ(MinMaxDist2(mp, nq), d2);
}

TEST(MetricsRectTest, PointInsideTargetHasZeroMinMin) {
  const Rect n = MakeRect2(0, 0, 2, 2);
  const Scalar p[2] = {1, 1};
  const Rect mp = Rect::FromPoint(p, 2);
  EXPECT_DOUBLE_EQ(MinMinDist2(mp, n), 0);
  EXPECT_GT(NxnDist2(mp, n), 0);  // still must reach an edge point
}

TEST(MetricsRectTest, PointRectHelpersAgreeWithRectMetrics) {
  Rng rng(12);
  for (int iter = 0; iter < 500; ++iter) {
    const int dim = 1 + static_cast<int>(rng.UniformInt(6));
    const Rect n = RandomRect(dim, &rng);
    Scalar p[kMaxDim];
    for (int d = 0; d < dim; ++d) p[d] = rng.Uniform(-0.5, 1.5);
    const Rect mp = Rect::FromPoint(p, dim);
    EXPECT_NEAR(PointRectMinDist2(p, n), MinMinDist2(mp, n), 1e-12);
    EXPECT_NEAR(PointRectMaxDist2(p, n), MaxMaxDist2(mp, n), 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Property tests for the paper's lemmas (randomized).
// ---------------------------------------------------------------------------

class NxnDistPropertyTest : public ::testing::TestWithParam<int> {};

/// Lemma 3.1: for every point r in M, the distance to its nearest neighbor
/// within N is at most NXNDIST(M, N). We verify against a dense sample of
/// N (the true NN over all of N is approached by sampling + the analytic
/// point-to-rect minimum cannot be used since the NN must be a *point of
/// N*, but N is a solid rect here, so the nearest point of N *is* the
/// analytic projection — making the check exact).
TEST_P(NxnDistPropertyTest, Lemma31UpperBoundsNearestNeighborInN) {
  const int dim = GetParam();
  Rng rng(100 + dim);
  for (int iter = 0; iter < 400; ++iter) {
    const Rect m = RandomRect(dim, &rng);
    const Rect n = RandomRect(dim, &rng);
    const Scalar nxn2 = NxnDist2(m, n);
    for (int s = 0; s < 30; ++s) {
      Scalar r[kMaxDim];
      RandomPointIn(m, &rng, r);
      // Worst case over N of the *nearest* point: for a solid rect the
      // nearest point to r is the clamp projection; but Lemma 3.1 must
      // hold even if N's point set is only guaranteed to touch every face
      // it bounds. The adversarial placement puts the single point of N at
      // the far end of the pinned dimension; NXNDIST is exactly the
      // worst-case over such placements, so the projection distance is a
      // (weaker) lower bound we also check.
      const Scalar proj2 = PointRectMinDist2(r, n);
      EXPECT_LE(proj2, nxn2 * (1 + 1e-12) + 1e-12);
    }
  }
}

/// Lemma 3.1, tight form: an adversary places points of N only at the
/// corners (every MBR has a point on each face; corners are the worst
/// concentration consistent with... actually corners satisfy all faces).
/// For every r in M, min over corners must be <= NXNDIST only when N's
/// points are at corners touching all faces — we place one point per face
/// pair at random positions on the faces and check the bound.
TEST_P(NxnDistPropertyTest, Lemma31HoldsForFaceTouchingPointSets) {
  const int dim = GetParam();
  Rng rng(200 + dim);
  for (int iter = 0; iter < 200; ++iter) {
    const Rect m = RandomRect(dim, &rng);
    const Rect n = RandomRect(dim, &rng);
    const Scalar nxn2 = NxnDist2(m, n);

    // Build a minimal face-touching point set for N: for each dimension d,
    // two points pinned to n.lo[d] / n.hi[d], free elsewhere. Any valid
    // MBR content must include such witnesses.
    std::vector<std::array<Scalar, kMaxDim>> pts;
    for (int d = 0; d < dim; ++d) {
      for (int side = 0; side < 2; ++side) {
        std::array<Scalar, kMaxDim> p{};
        RandomPointIn(n, &rng, p.data());
        p[d] = side == 0 ? n.lo[d] : n.hi[d];
        pts.push_back(p);
      }
    }
    for (int s = 0; s < 20; ++s) {
      Scalar r[kMaxDim];
      RandomPointIn(m, &rng, r);
      Scalar best = kInf;
      for (const auto& p : pts) {
        best = std::min(best, PointDist2(r, p.data(), dim));
      }
      EXPECT_LE(best, nxn2 * (1 + 1e-9) + 1e-12)
          << "dim=" << dim << " iter=" << iter;
    }
  }
}

/// Lemma 3.2: shrinking the query MBR can only shrink NXNDIST.
TEST_P(NxnDistPropertyTest, Lemma32MonotoneUnderQueryShrink) {
  const int dim = GetParam();
  Rng rng(300 + dim);
  for (int iter = 0; iter < 500; ++iter) {
    const Rect m = RandomRect(dim, &rng);
    const Rect n = RandomRect(dim, &rng);
    // Random sub-rect of m.
    Rect child = m;
    for (int d = 0; d < dim; ++d) {
      Scalar a = rng.Uniform(m.lo[d], m.hi[d]);
      Scalar b = rng.Uniform(m.lo[d], m.hi[d]);
      if (a > b) std::swap(a, b);
      child.lo[d] = a;
      child.hi[d] = b;
    }
    EXPECT_LE(NxnDist2(child, n), NxnDist2(m, n) * (1 + 1e-12) + 1e-12);
  }
}

/// Lemma 3.3: MINMINDIST between children is NOT always below the parent
/// NXNDIST — the property that lets NXNDIST prune child paths early. We
/// reproduce the paper's construction style: child MBRs pushed into
/// opposite corners.
TEST(NxnDistLemmaTest, Lemma33ChildMinMinCanExceedParentNxn) {
  // Parent M = [0,8]x[0,8], N = [10,18]x[0,8].
  const Rect m = MakeRect2(0, 0, 8, 8);
  const Rect n = MakeRect2(10, 0, 18, 8);
  // Children at adversarial corners: m at far-left-bottom, n at
  // far-right-top.
  const Rect mc = MakeRect2(0, 0, 1, 1);
  const Rect nc = MakeRect2(17, 7, 18, 8);
  EXPECT_GT(MinMinDist2(mc, nc), NxnDist2(m, n));
}

/// NXNDIST is never larger than MAXMAXDIST and never smaller than
/// MINMINDIST; MINMAXDIST sits below NXNDIST (Figure 2(a)).
TEST_P(NxnDistPropertyTest, MetricOrdering) {
  const int dim = GetParam();
  Rng rng(400 + dim);
  for (int iter = 0; iter < 1000; ++iter) {
    const Rect m = RandomRect(dim, &rng);
    const Rect n = RandomRect(dim, &rng);
    const Scalar minmin = MinMinDist2(m, n);
    const Scalar minmax = MinMaxDist2(m, n);
    const Scalar nxn = NxnDist2(m, n);
    const Scalar maxmax = MaxMaxDist2(m, n);
    EXPECT_LE(minmin, minmax * (1 + 1e-12) + 1e-12);
    EXPECT_LE(minmax, nxn * (1 + 1e-12) + 1e-12);
    EXPECT_LE(nxn, maxmax * (1 + 1e-12) + 1e-12);
  }
}

/// NXNDIST is asymmetric (noted after Lemma 3.3): exhibit a pair with
/// NXNDIST(M, N) != NXNDIST(N, M), and measure that asymmetry is common.
TEST(NxnDistLemmaTest, Asymmetry) {
  // Large M against a small offset N.
  const Rect m = MakeRect2(0, 0, 10, 10);
  const Rect n = MakeRect2(12, 4, 13, 5);
  EXPECT_NE(NxnDist2(m, n), NxnDist2(n, m));

  Rng rng(77);
  int asymmetric = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Rect a = RandomRect(2, &rng);
    const Rect b = RandomRect(2, &rng);
    if (std::abs(NxnDist2(a, b) - NxnDist2(b, a)) > 1e-15) ++asymmetric;
  }
  EXPECT_GT(asymmetric, 100);
}

/// Algorithm 1's O(D) evaluation agrees with the direct Definition 3.2
/// computation (min over pinned dimensions).
TEST_P(NxnDistPropertyTest, AlgorithmOneMatchesDefinition) {
  const int dim = GetParam();
  Rng rng(500 + dim);
  for (int iter = 0; iter < 500; ++iter) {
    const Rect m = RandomRect(dim, &rng);
    const Rect n = RandomRect(dim, &rng);
    // Definition 3.2 directly: min over d of S - MAXDIST_d^2 + MAXMIN_d^2.
    Scalar s = 0;
    for (int d = 0; d < dim; ++d) {
      const Scalar v = MaxDist1(m.lo[d], m.hi[d], n.lo[d], n.hi[d]);
      s += v * v;
    }
    Scalar expected = kInf;
    for (int d = 0; d < dim; ++d) {
      const Scalar v = MaxDist1(m.lo[d], m.hi[d], n.lo[d], n.hi[d]);
      const Scalar mm = MaxMin1(m.lo[d], m.hi[d], n.lo[d], n.hi[d]);
      expected = std::min(expected, s - v * v + mm * mm);
    }
    EXPECT_NEAR(NxnDist2(m, n), expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, NxnDistPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 6, 10, 16));

TEST(MetricsTest, SqrtWrappersConsistent) {
  Rng rng(3);
  const Rect m = RandomRect(3, &rng);
  const Rect n = RandomRect(3, &rng);
  EXPECT_DOUBLE_EQ(MinMinDist(m, n), std::sqrt(MinMinDist2(m, n)));
  EXPECT_DOUBLE_EQ(MaxMaxDist(m, n), std::sqrt(MaxMaxDist2(m, n)));
  EXPECT_DOUBLE_EQ(NxnDist(m, n), std::sqrt(NxnDist2(m, n)));
  EXPECT_DOUBLE_EQ(MinMaxDist(m, n), std::sqrt(MinMaxDist2(m, n)));
}

TEST(MetricsTest, UpperBound2Dispatch) {
  Rng rng(4);
  const Rect m = RandomRect(2, &rng);
  const Rect n = RandomRect(2, &rng);
  EXPECT_EQ(UpperBound2(PruneMetric::kNxnDist, m, n), NxnDist2(m, n));
  EXPECT_EQ(UpperBound2(PruneMetric::kMaxMaxDist, m, n), MaxMaxDist2(m, n));
  EXPECT_STREQ(ToString(PruneMetric::kNxnDist), "NXNDIST");
  EXPECT_STREQ(ToString(PruneMetric::kMaxMaxDist), "MAXMAXDIST");
}

}  // namespace
}  // namespace ann
