// Coverage for small utilities and error paths not exercised elsewhere.

#include <gtest/gtest.h>

#include "ann/mba.h"
#include "common/space_curve.h"
#include "index/index_stats.h"
#include "index/mbrqt/mbrqt.h"
#include "index/paged_index_view.h"
#include "metrics/metrics.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(MiscTest, RectToStringShowsBounds) {
  const Scalar lo[2] = {0, -1.5}, hi[2] = {2, 3};
  const Rect r = Rect::FromBounds(lo, hi, 2);
  const std::string s = r.ToString();
  EXPECT_NE(s.find("0..2"), std::string::npos);
  EXPECT_NE(s.find("-1.5..3"), std::string::npos);
}

TEST(MiscTest, ExceedsBound2EdgeCases) {
  EXPECT_FALSE(ExceedsBound2(5.0, kInf));
  EXPECT_FALSE(ExceedsBound2(0.0, 0.0));
  EXPECT_TRUE(ExceedsBound2(1e-300, 0.0));
  // Within slack: not pruned.
  EXPECT_FALSE(ExceedsBound2(1.0 + 1e-14, 1.0));
  // Beyond slack: pruned.
  EXPECT_TRUE(ExceedsBound2(1.0 + 1e-9, 1.0));
}

TEST(MiscTest, CurveDispatchMatchesDirectClasses) {
  const Dataset data = RandomDataset(2, 300, 1);
  EXPECT_EQ(CurveSortedOrder(CurveOrder::kZOrder, data),
            ZOrder(data.BoundingBox()).SortedOrder(data));
  EXPECT_EQ(CurveSortedOrder(CurveOrder::kHilbert, data),
            HilbertCurve(data.BoundingBox()).SortedOrder(data));
  EXPECT_STREQ(ToString(CurveOrder::kZOrder), "Z-order");
  EXPECT_STREQ(ToString(CurveOrder::kHilbert), "Hilbert");
}

TEST(MiscTest, ExpandOnObjectEntryFails) {
  const Dataset data = RandomDataset(2, 50, 2);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
  const MemIndexView view(&qt.Finalize());
  std::vector<IndexEntry> children;
  ASSERT_OK(view.Expand(view.Root(), &children));
  const auto it =
      std::find_if(children.begin(), children.end(),
                   [](const IndexEntry& e) { return e.is_object; });
  if (it != children.end()) {
    std::vector<IndexEntry> out;
    EXPECT_TRUE(view.Expand(*it, &out).IsInvalidArgument());
  }
}

TEST(MiscTest, PagedViewBadNodeIdFails) {
  MemDiskManager disk;
  BufferPool pool(&disk, 16);
  NodeStore store(&pool);
  const Dataset data = RandomDataset(2, 200, 3);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data));
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta,
                       PersistMemTree(qt.Finalize(), &store));
  const PagedIndexView view(&store, meta);
  IndexEntry bogus = view.Root();
  bogus.id = meta.root + 1000;  // unused slot on some page
  std::vector<IndexEntry> out;
  EXPECT_FALSE(view.Expand(bogus, &out).ok());
}

TEST(MiscTest, IndexStatsToStringMentionsLevels) {
  const Dataset data = RandomDataset(2, 500, 4);
  MbrqtOptions opts;
  opts.bucket_capacity = 16;
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(data, opts));
  const MemIndexView view(&qt.Finalize());
  ASSERT_OK_AND_ASSIGN(const IndexStatsReport report,
                       CollectIndexStats(view));
  const std::string s = report.ToString();
  EXPECT_NE(s.find("height="), std::string::npos);
  EXPECT_NE(s.find("level 0"), std::string::npos);
}

TEST(MiscTest, EnumToStringsAreStable) {
  EXPECT_STREQ(ToString(Traversal::kDepthFirst), "DF");
  EXPECT_STREQ(ToString(Traversal::kBreadthFirst), "BF");
  EXPECT_STREQ(ToString(Expansion::kBidirectional), "BI");
  EXPECT_STREQ(ToString(Expansion::kUnidirectional), "UNI");
  EXPECT_STREQ(ToString(Replacement::kLru), "LRU");
  EXPECT_STREQ(ToString(Replacement::kClock), "CLOCK");
}

TEST(MiscTest, DegenerateOneByOneAnn) {
  // Smallest possible workload through the full engine.
  Dataset r(1), s(1);
  const Scalar a[1] = {3.0}, b[1] = {5.5};
  r.Append(a);
  s.Append(b);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());
  std::vector<NeighborList> got;
  ASSERT_OK(AllNearestNeighbors(ir, is, AnnOptions{}, &got));
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].neighbors.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].neighbors[0].second, 2.5);
}

}  // namespace
}  // namespace ann
