// Tests for the capability-annotated synchronization surface
// (src/common/mutex.h): MutexLock/CondVar semantics driven through the
// library's own ThreadPool, the rank/name registration round-trip, and —
// in DCHECK builds — death tests proving the runtime lock-order detector
// catches inversions, equal-rank nesting, re-locking, and AssertHeld
// misuse by name.

#include "common/mutex.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace ann {
namespace {

TEST(MutexTest, NameAndRankRoundTrip) {
  const Mutex def;
  EXPECT_STREQ(def.name(), "mutex");
  EXPECT_EQ(def.rank(), kMutexRankNone);

  const Mutex ranked("storage.stripe", kMutexRankBufferPoolStripe);
  EXPECT_STREQ(ranked.name(), "storage.stripe");
  EXPECT_EQ(ranked.rank(), kMutexRankBufferPoolStripe);
}

TEST(MutexTest, RankConstantsAreStrictlyOrdered) {
  // The declared acquisition order must stay strictly increasing; a new
  // subsystem rank that collides with an existing one would make two
  // independent lock levels mutually exclusive by accident.
  EXPECT_LT(kMutexRankThreadPool, kMutexRankBufferPoolStripe);
  EXPECT_LT(kMutexRankBufferPoolStripe, kMutexRankDiskManager);
  EXPECT_LT(kMutexRankDiskManager, kMutexRankObsRegistry);
  EXPECT_LT(kMutexRankNone, 0);
}

// Guarded state lives in structs: ANNLIB_GUARDED_BY is a member/global
// attribute, so annotated locals would not compile under the analysis.
struct GuardedCounter {
  Mutex mu{"test.counter"};
  long counter ANNLIB_GUARDED_BY(mu) = 0;
  bool in_cs ANNLIB_GUARDED_BY(mu) = false;
  bool overlap ANNLIB_GUARDED_BY(mu) = false;
};

TEST(MutexTest, MutexLockSerializesCriticalSections) {
  // 8 tasks x 20k increments through a guarded counter on a 4-thread
  // pool: any lost update means mutual exclusion failed. `in_cs` detects
  // overlapping critical sections directly (it would be torn or observed
  // true by a second entrant).
  GuardedCounter state;
  constexpr int kTasks = 8;
  constexpr int kIters = 20000;
  {
    ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&state] {
        for (int i = 0; i < kIters; ++i) {
          MutexLock lock(&state.mu);
          if (state.in_cs) state.overlap = true;
          state.in_cs = true;
          ++state.counter;
          state.in_cs = false;
        }
      });
    }
    pool.Wait();
  }
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.counter, static_cast<long>(kTasks) * kIters);
  EXPECT_FALSE(state.overlap);
}

struct Handshake {
  Mutex mu{"test.handshake"};
  CondVar cv;
  bool go ANNLIB_GUARDED_BY(mu) = false;
  bool ack ANNLIB_GUARDED_BY(mu) = false;
};

TEST(MutexTest, CondVarHandshakeUnderThreadPool) {
  // Two-phase ping/pong through one CondVar pair: the pool task waits for
  // `go`, publishes `ack`, and the test thread waits for that. Exercises
  // Wait's release-block-reacquire path from both sides.
  Handshake hs;
  ThreadPool pool(1);
  pool.Submit([&hs] {
    MutexLock lock(&hs.mu);
    while (!hs.go) hs.cv.Wait(&hs.mu);
    hs.ack = true;
    hs.cv.Signal();
  });
  {
    MutexLock lock(&hs.mu);
    hs.go = true;
  }
  hs.cv.Signal();
  {
    MutexLock lock(&hs.mu);
    while (!hs.ack) hs.cv.Wait(&hs.mu);
    EXPECT_TRUE(hs.ack);
  }
  pool.Wait();
}

struct Barrier {
  Mutex mu{"test.barrier"};
  CondVar cv;
  bool open ANNLIB_GUARDED_BY(mu) = false;
  int through ANNLIB_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, SignalAllWakesEveryWaiter) {
  Barrier b;
  constexpr int kWaiters = 6;
  {
    ThreadPool pool(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
      pool.Submit([&b] {
        MutexLock lock(&b.mu);
        while (!b.open) b.cv.Wait(&b.mu);
        ++b.through;
      });
    }
    {
      MutexLock lock(&b.mu);
      b.open = true;
    }
    b.cv.SignalAll();
    pool.Wait();
  }
  MutexLock lock(&b.mu);
  EXPECT_EQ(b.through, kWaiters);
}

TEST(MutexTest, AssertHeldPassesWhileHolding) {
  Mutex mu("test.assert");
  MutexLock lock(&mu);
  mu.AssertHeld();  // must not fire in any build config
}

TEST(MutexTest, RankedNestingInDeclaredOrderIsClean) {
  // Increasing-rank chains — the only legal nesting — must not trip the
  // detector, including interleaved unranked leaf locks (exempt from
  // ordering in both directions).
  Mutex low("test.low", 10);
  Mutex mid("test.mid", 20);
  Mutex leaf("test.leaf");  // kMutexRankNone
  Mutex high("test.high", 30);
  MutexLock l1(&low);
  MutexLock l2(&mid);
  MutexLock l3(&leaf);
  MutexLock l4(&high);
  high.AssertHeld();
  low.AssertHeld();
}

#if ANNLIB_DCHECK_IS_ON

TEST(MutexDeathTest, LockOrderInversionDies) {
  Mutex low("test.order.low", 10);
  Mutex high("test.order.high", 20);
  EXPECT_DEATH(
      {
        MutexLock outer(&high);
        MutexLock inner(&low);  // rank 10 under rank 20: inversion
      },
      "lock-order inversion.*test\\.order\\.low.*test\\.order\\.high");
}

TEST(MutexDeathTest, EqualRankNestingDies) {
  // Two locks sharing a rank are unordered relative to each other, so
  // holding both is a violation — this is the buffer pool's
  // one-stripe-at-a-time contract (see kMutexRankBufferPoolStripe).
  Mutex s0("test.stripe0", kMutexRankBufferPoolStripe);
  Mutex s1("test.stripe1", kMutexRankBufferPoolStripe);
  EXPECT_DEATH(
      {
        MutexLock outer(&s0);
        MutexLock inner(&s1);
      },
      "lock-order inversion.*test\\.stripe1.*test\\.stripe0");
}

// The static analysis would (rightly) reject this double-acquire at
// compile time; the helper opts out so the death test can exercise the
// *runtime* detector's report of the same bug.
void RelockHeldMutex(Mutex* mu) ANNLIB_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock outer(mu);
  mu->Lock();  // same mutex, same thread: self-deadlock
}

TEST(MutexDeathTest, RelockDies) {
  Mutex mu("test.relock");
  EXPECT_DEATH(RelockHeldMutex(&mu),
               "re-locking already-held mutex.*test\\.relock");
}

TEST(MutexDeathTest, AssertHeldWithoutHoldingDies) {
  Mutex mu("test.unheld");
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld.*test\\.unheld");
}

#endif  // ANNLIB_DCHECK_IS_ON

}  // namespace
}  // namespace ann
