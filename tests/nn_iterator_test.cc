#include <gtest/gtest.h>

#include <algorithm>

#include "ann/distance_join.h"
#include "ann/nn_search.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<Scalar> AllDistancesSorted(const Dataset& s, const Scalar* q) {
  std::vector<Scalar> dists(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    dists[i] = std::sqrt(PointDist2(q, s.point(i), s.dim()));
  }
  std::sort(dists.begin(), dists.end());
  return dists;
}

TEST(NnIteratorTest, YieldsAllObjectsInDistanceOrder) {
  const Dataset s = RandomDataset(2, 1000, 1);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(s));
  const MemIndexView view(&qt.Finalize());
  const Scalar q[2] = {0.4, 0.6};

  NnIterator it(view, q);
  const std::vector<Scalar> want = AllDistancesSorted(s, q);
  Neighbor n;
  bool has = false;
  std::vector<bool> seen(s.size(), false);
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_OK(it.Next(&has, &n));
    ASSERT_TRUE(has) << "exhausted early at " << i;
    EXPECT_NEAR(n.second, want[i], 1e-9) << "rank " << i;
    EXPECT_FALSE(seen[n.first]) << "object yielded twice";
    seen[n.first] = true;
  }
  ASSERT_OK(it.Next(&has, &n));
  EXPECT_FALSE(has);
  // Exhausting the iterator again stays exhausted.
  ASSERT_OK(it.Next(&has, &n));
  EXPECT_FALSE(has);
}

TEST(NnIteratorTest, MatchesPointKnnPrefix) {
  const Dataset s = RandomDataset(4, 800, 2);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());
  const Scalar q[4] = {0.2, 0.9, 0.5, 0.1};

  SearchStats stats;
  std::vector<Neighbor> knn;
  ASSERT_OK(PointKnn(view, q, 25, kInf, &knn, &stats));

  NnIterator it(view, q);
  Neighbor n;
  bool has;
  for (int i = 0; i < 25; ++i) {
    ASSERT_OK(it.Next(&has, &n));
    ASSERT_TRUE(has);
    EXPECT_NEAR(n.second, knn[i].second, 1e-9);
  }
}

TEST(NnIteratorTest, LazyExpansionIsCheapForFewNeighbors) {
  const Dataset s = RandomDataset(2, 20000, 3);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(s));
  const MemIndexView view(&qt.Finalize());
  const Scalar q[2] = {0.5, 0.5};

  NnIterator it(view, q);
  Neighbor n;
  bool has;
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(it.Next(&has, &n));
    ASSERT_TRUE(has);
  }
  // Pulling 3 neighbors from 20K points must touch a tiny index fraction.
  EXPECT_LT(it.stats().nodes_expanded, 50u);
}

std::vector<Scalar> BrutePairDistances(const Dataset& r, const Dataset& s,
                                       int k) {
  std::vector<Scalar> d2;
  d2.reserve(r.size() * s.size());
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      d2.push_back(PointDist2(r.point(i), s.point(j), r.dim()));
    }
  }
  std::sort(d2.begin(), d2.end());
  std::vector<Scalar> out;
  for (int i = 0; i < k && i < static_cast<int>(d2.size()); ++i) {
    out.push_back(std::sqrt(d2[i]));
  }
  return out;
}

class KClosestPairsTest : public ::testing::TestWithParam<int> {};

TEST_P(KClosestPairsTest, MatchesBruteForce) {
  const int k = GetParam();
  const Dataset r = RandomDataset(2, 300, 4);
  const Dataset s = RandomDataset(2, 300, 5);
  MbrqtOptions qopts;
  qopts.bucket_capacity = 8;  // deep trees so post-bound pruning happens
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r, qopts));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s, qopts));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  std::vector<JoinPair> got;
  JoinStats stats;
  ASSERT_OK(KClosestPairs(ir, is, k, &got, &stats));
  const std::vector<Scalar> want = BrutePairDistances(r, s, k);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].dist, want[i], 1e-9) << "rank " << i;
    // Reported pair must actually have the reported distance.
    EXPECT_NEAR(std::sqrt(PointDist2(r.point(got[i].r_id),
                                     s.point(got[i].s_id), 2)),
                got[i].dist, 1e-9);
    if (i > 0) {
      EXPECT_GE(got[i].dist, got[i - 1].dist);
    }
  }
  // Best-first termination must touch a small fraction of the 90,000
  // possible pairs.
  EXPECT_LT(stats.distance_evals, r.size() * s.size() / 4);
}

INSTANTIATE_TEST_SUITE_P(Ks, KClosestPairsTest,
                         ::testing::Values(1, 5, 32, 200),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(KClosestPairsTest, KBiggerThanAllPairs) {
  const Dataset r = RandomDataset(2, 5, 6);
  const Dataset s = RandomDataset(2, 4, 7);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());
  std::vector<JoinPair> got;
  ASSERT_OK(KClosestPairs(ir, is, 100, &got));
  EXPECT_EQ(got.size(), 20u);  // all pairs
}

TEST(KClosestPairsTest, MixedIndexKinds) {
  const Dataset r = RandomDataset(3, 200, 8);
  const Dataset s = RandomDataset(3, 250, 9);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(const RStarTree ts, RStarTree::BulkLoadStr(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&ts.tree());
  std::vector<JoinPair> got;
  ASSERT_OK(KClosestPairs(ir, is, 10, &got));
  const std::vector<Scalar> want = BrutePairDistances(r, s, 10);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(got[i].dist, want[i], 1e-9);
}

TEST(ClosestPairIteratorTest, PrefixMatchesKClosestPairs) {
  const Dataset r = RandomDataset(2, 250, 11);
  const Dataset s = RandomDataset(2, 250, 12);
  MbrqtOptions qopts;
  qopts.bucket_capacity = 8;
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r, qopts));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s, qopts));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  std::vector<JoinPair> want;
  ASSERT_OK(KClosestPairs(ir, is, 40, &want));

  ClosestPairIterator it(ir, is);
  JoinPair p;
  bool has = false;
  Scalar prev = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK(it.Next(&has, &p));
    ASSERT_TRUE(has);
    EXPECT_NEAR(p.dist, want[i].dist, 1e-9) << "rank " << i;
    EXPECT_GE(p.dist + 1e-12, prev);
    prev = p.dist;
  }
}

TEST(ClosestPairIteratorTest, ExhaustsEveryPair) {
  const Dataset r = RandomDataset(2, 12, 13);
  const Dataset s = RandomDataset(2, 9, 14);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qs, Mbrqt::Build(s));
  const MemIndexView ir(&qr.Finalize());
  const MemIndexView is(&qs.Finalize());

  ClosestPairIterator it(ir, is);
  JoinPair p;
  bool has = false;
  size_t count = 0;
  while (true) {
    ASSERT_OK(it.Next(&has, &p));
    if (!has) break;
    ++count;
  }
  EXPECT_EQ(count, r.size() * s.size());
  ASSERT_OK(it.Next(&has, &p));
  EXPECT_FALSE(has);
}

TEST(KClosestPairsTest, RejectsBadArguments) {
  const Dataset r = RandomDataset(2, 10, 10);
  ASSERT_OK_AND_ASSIGN(Mbrqt qr, Mbrqt::Build(r));
  const MemIndexView ir(&qr.Finalize());
  std::vector<JoinPair> got;
  EXPECT_TRUE(KClosestPairs(ir, ir, 0, &got).IsInvalidArgument());
}

}  // namespace
}  // namespace ann
