#include "ann/nn_search.h"

#include <gtest/gtest.h>

#include "ann/brute_force.h"
#include "index/mbrqt/mbrqt.h"
#include "index/rstar/rstar_tree.h"
#include "test_util.h"

namespace ann {
namespace {

TEST(PointKnnTest, MatchesBruteForceOnRStar) {
  const Dataset s = RandomDataset(3, 2000, 1);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());

  const Dataset queries = RandomDataset(3, 50, 2);
  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(queries, s, 4, &want));

  SearchStats stats;
  std::vector<Neighbor> got;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_OK(PointKnn(view, queries.point(i), 4, kInf, &got, &stats));
    ASSERT_EQ(got.size(), want[i].neighbors.size());
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_NEAR(got[j].second, want[i].neighbors[j].second, 1e-9);
    }
  }
  EXPECT_GT(stats.nodes_expanded, 0u);
}

TEST(PointKnnTest, MatchesBruteForceOnMbrqt) {
  const Dataset s = RandomDataset(2, 3000, 3);
  ASSERT_OK_AND_ASSIGN(Mbrqt qt, Mbrqt::Build(s));
  const MemIndexView view(&qt.Finalize());

  const Dataset queries = RandomDataset(2, 50, 4);
  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(queries, s, 1, &want));

  SearchStats stats;
  std::vector<Neighbor> got;
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_OK(PointKnn(view, queries.point(i), 1, kInf, &got, &stats));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_NEAR(got[0].second, want[i].neighbors[0].second, 1e-9);
  }
}

TEST(PointKnnTest, TightSeedBoundStillExact) {
  const Dataset s = RandomDataset(2, 1000, 5);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());
  const Scalar q[2] = {0.5, 0.5};

  SearchStats stats;
  std::vector<Neighbor> loose, seeded;
  ASSERT_OK(PointKnn(view, q, 3, kInf, &loose, &stats));
  // Seed with the exact answer (valid upper bound): same result, and the
  // pruning can only get stronger.
  SearchStats seeded_stats;
  const Scalar kth = loose.back().second;
  ASSERT_OK(PointKnn(view, q, 3, kth * kth * (1 + 1e-12), &seeded,
                     &seeded_stats));
  ASSERT_EQ(seeded.size(), 3u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(seeded[j].second, loose[j].second, 1e-9);
  }
  EXPECT_LE(seeded_stats.heap_pushes, stats.heap_pushes);
}

TEST(PointKnnTest, KBiggerThanDataset) {
  const Dataset s = RandomDataset(2, 5, 6);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());
  const Scalar q[2] = {0.1, 0.1};
  SearchStats stats;
  std::vector<Neighbor> got;
  ASSERT_OK(PointKnn(view, q, 10, kInf, &got, &stats));
  EXPECT_EQ(got.size(), 5u);
  for (size_t j = 1; j < got.size(); ++j) {
    EXPECT_GE(got[j].second, got[j - 1].second);
  }
}

TEST(PointKnnTest, RejectsBadK) {
  const Dataset s = RandomDataset(2, 5, 7);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(s));
  const MemIndexView view(&tree.tree());
  const Scalar q[2] = {0, 0};
  SearchStats stats;
  std::vector<Neighbor> got;
  EXPECT_TRUE(PointKnn(view, q, 0, kInf, &got, &stats).IsInvalidArgument());
}

}  // namespace
}  // namespace ann
