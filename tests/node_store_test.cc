#include "storage/node_store.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<char> MakeBlob(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<char> blob(size);
  for (auto& c : blob) c = static_cast<char>(rng.Next() & 0xFF);
  return blob;
}

class NodeStoreTest : public ::testing::Test {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 16};
  NodeStore store_{&pool_};
};

TEST_F(NodeStoreTest, SmallRecordRoundtrip) {
  const std::vector<char> blob = MakeBlob(100, 1);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  std::vector<char> out;
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_EQ(out, blob);
}

TEST_F(NodeStoreTest, EmptyRecordRoundtrip) {
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(nullptr, 0));
  std::vector<char> out = MakeBlob(5, 0);
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(NodeStoreTest, SmallRecordsSharePages) {
  // Packing is the point of the slotted layout: dozens of small records
  // must land on a single page.
  const std::vector<char> blob = MakeBlob(64, 2);
  std::vector<NodeId> ids;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(const NodeId id,
                         store_.Append(blob.data(), blob.size()));
    ids.push_back(id);
  }
  EXPECT_LE(disk_.page_count(), 2u);
  std::vector<char> out;
  for (const NodeId id : ids) {
    ASSERT_OK(store_.Read(id, &out));
    EXPECT_EQ(out, blob);
  }
}

TEST_F(NodeStoreTest, MaxInlineRecordFitsOnePage) {
  const std::vector<char> blob = MakeBlob(NodeStore::kMaxInline, 3);
  const uint64_t pages_before = disk_.page_count();
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  EXPECT_EQ(disk_.page_count(), pages_before + 1);
  std::vector<char> out;
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_EQ(out, blob);
}

TEST_F(NodeStoreTest, OverflowChainRoundtrip) {
  const std::vector<char> blob = MakeBlob(3 * kPageSize + 17, 4);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  EXPECT_GE(disk_.page_count(), 4u);
  std::vector<char> out;
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_EQ(out, blob);
}

TEST_F(NodeStoreTest, MixedSizesKeepTheirIdentity) {
  Rng rng(5);
  std::vector<NodeId> ids;
  std::vector<std::vector<char>> blobs;
  for (int i = 0; i < 200; ++i) {
    blobs.push_back(MakeBlob(1 + rng.UniformInt(2 * kPageSize), 100 + i));
    ASSERT_OK_AND_ASSIGN(
        const NodeId id, store_.Append(blobs.back().data(), blobs.back().size()));
    ids.push_back(id);
  }
  EXPECT_EQ(store_.record_count(), 200u);
  std::vector<char> out;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(store_.Read(ids[i], &out));
    EXPECT_EQ(out, blobs[i]) << "record " << i;
  }
}

TEST_F(NodeStoreTest, UpdateInPlaceSameOrSmaller) {
  const std::vector<char> blob = MakeBlob(500, 6);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  const uint64_t pages = disk_.page_count();
  const std::vector<char> blob2 = MakeBlob(500, 7);
  ASSERT_OK(store_.Update(id, blob2.data(), blob2.size()));
  const std::vector<char> blob3 = MakeBlob(100, 8);
  ASSERT_OK(store_.Update(id, blob3.data(), blob3.size()));
  EXPECT_EQ(disk_.page_count(), pages);  // all in place
  std::vector<char> out;
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_EQ(out, blob3);
}

TEST_F(NodeStoreTest, UpdateGrowMovesToOverflow) {
  const std::vector<char> small = MakeBlob(100, 9);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(small.data(), small.size()));
  const std::vector<char> big = MakeBlob(2 * kPageSize + 5, 10);
  ASSERT_OK(store_.Update(id, big.data(), big.size()));
  std::vector<char> out;
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_EQ(out, big);
  // Neighboring records on the same page must be unaffected.
}

TEST_F(NodeStoreTest, UpdateDoesNotDisturbPageNeighbors) {
  const std::vector<char> a = MakeBlob(50, 11);
  const std::vector<char> b = MakeBlob(60, 12);
  const std::vector<char> c = MakeBlob(70, 13);
  ASSERT_OK_AND_ASSIGN(const NodeId ia, store_.Append(a.data(), a.size()));
  ASSERT_OK_AND_ASSIGN(const NodeId ib, store_.Append(b.data(), b.size()));
  ASSERT_OK_AND_ASSIGN(const NodeId ic, store_.Append(c.data(), c.size()));
  const std::vector<char> big = MakeBlob(3 * kPageSize, 14);
  ASSERT_OK(store_.Update(ib, big.data(), big.size()));
  std::vector<char> out;
  ASSERT_OK(store_.Read(ia, &out));
  EXPECT_EQ(out, a);
  ASSERT_OK(store_.Read(ic, &out));
  EXPECT_EQ(out, c);
  ASSERT_OK(store_.Read(ib, &out));
  EXPECT_EQ(out, big);
}

TEST_F(NodeStoreTest, UpdateShrinkOverflowFreesPages) {
  const std::vector<char> big = MakeBlob(4 * kPageSize, 15);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(big.data(), big.size()));
  EXPECT_EQ(store_.free_pages(), 0u);
  const std::vector<char> small = MakeBlob(10, 16);
  ASSERT_OK(store_.Update(id, small.data(), small.size()));
  EXPECT_GT(store_.free_pages(), 0u);
  std::vector<char> out;
  ASSERT_OK(store_.Read(id, &out));
  EXPECT_EQ(out, small);
}

TEST_F(NodeStoreTest, FreeRecyclesOverflowPages) {
  const std::vector<char> blob = MakeBlob(2 * kPageSize, 17);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  ASSERT_OK(store_.Free(id));
  EXPECT_GE(store_.free_pages(), 2u);
  std::vector<char> out;
  EXPECT_TRUE(store_.Read(id, &out).IsNotFound());
  // A fresh overflow append must reuse the freed pages.
  const uint64_t pages_before = disk_.page_count();
  const std::vector<char> blob2 = MakeBlob(kPageSize + kPageSize / 2, 18);
  ASSERT_OK_AND_ASSIGN(const NodeId id2,
                       store_.Append(blob2.data(), blob2.size()));
  EXPECT_EQ(disk_.page_count(), pages_before);
  ASSERT_OK(store_.Read(id2, &out));
  EXPECT_EQ(out, blob2);
}

TEST_F(NodeStoreTest, ReadBadSlotFails) {
  const std::vector<char> blob = MakeBlob(10, 19);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  std::vector<char> out;
  EXPECT_TRUE(store_.Read(id + 1, &out).IsNotFound());  // next slot unused
  EXPECT_TRUE(store_.Update(id + 1, blob.data(), 1).IsNotFound());
  EXPECT_TRUE(store_.Free(id + 1).IsNotFound());
}

TEST_F(NodeStoreTest, DoubleFreeFails) {
  const std::vector<char> blob = MakeBlob(10, 20);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store_.Append(blob.data(), blob.size()));
  ASSERT_OK(store_.Free(id));
  EXPECT_TRUE(store_.Free(id).IsNotFound());
}

TEST_F(NodeStoreTest, SurvivesTinyBufferPool) {
  // A 2-frame pool forces evictions between append and read.
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  NodeStore store(&pool);
  const std::vector<char> blob = MakeBlob(5 * kPageSize, 21);
  ASSERT_OK_AND_ASSIGN(const NodeId id, store.Append(blob.data(), blob.size()));
  const std::vector<char> tiny = MakeBlob(30, 22);
  ASSERT_OK_AND_ASSIGN(const NodeId id2, store.Append(tiny.data(), tiny.size()));
  std::vector<char> out;
  ASSERT_OK(store.Read(id, &out));
  EXPECT_EQ(out, blob);
  ASSERT_OK(store.Read(id2, &out));
  EXPECT_EQ(out, tiny);
  EXPECT_GT(pool.stats().evictions, 0u);
}

}  // namespace
}  // namespace ann
