#include "obs/obs.h"

#include <gtest/gtest.h>

#include <vector>

#include "ann/mba.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/node_format.h"
#include "obs/export.h"
#include "test_util.h"

namespace ann {
namespace {

// ---- exporter tests: operate on hand-built Snapshots, so they hold in
// both the instrumented and the ANNLIB_OBS_DISABLED build.

TEST(ObsExportTest, JsonEscape) {
  EXPECT_EQ(obs::JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(obs::JsonEscape("quote\"back\\slash"), "quote\\\"back\\\\slash");
  EXPECT_EQ(obs::JsonEscape("line\nfeed\ttab\rret"),
            "line\\nfeed\\ttab\\rret");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  EXPECT_EQ(obs::JsonEscape("\b\f"), "\\b\\f");
}

obs::Snapshot MakeSnapshot() {
  obs::Snapshot snap;
  snap.counters.emplace_back("a.hits", 3);
  snap.counters.emplace_back("b.misses", 0);
  snap.gauges.emplace_back("pool.frames", -2);
  obs::HistogramSnapshot h;
  h.name = "lat\"ency";  // exercises key escaping
  h.bounds = {1.0, 2.5};
  h.buckets = {4, 0, 1};
  h.count = 5;
  h.sum = 7.5;
  h.min = 0.5;
  h.max = 3.0;
  snap.histograms.push_back(h);
  obs::TimerSnapshot t;
  t.name = "phase.x";
  t.calls = 2;
  t.total_ns = 3000000;  // 3 ms
  snap.timers.push_back(t);
  return snap;
}

TEST(ObsExportTest, JsonShape) {
  const std::string json = obs::ToJson(MakeSnapshot());
  EXPECT_EQ(json,
            "{\"counters\": {\"a.hits\": 3, \"b.misses\": 0}, "
            "\"gauges\": {\"pool.frames\": -2}, "
            "\"histograms\": {\"lat\\\"ency\": {\"count\": 5, \"sum\": 7.5, "
            "\"min\": 0.5, \"max\": 3, \"bounds\": [1, 2.5], "
            "\"buckets\": [4, 0, 1]}}, "
            "\"timers\": {\"phase.x\": {\"calls\": 2, \"total_ms\": 3, "
            "\"latency_bounds_ns\": [], \"latency_buckets\": []}}}");
}

TEST(ObsExportTest, JsonIsDeterministic) {
  EXPECT_EQ(obs::ToJson(MakeSnapshot()), obs::ToJson(MakeSnapshot()));
}

TEST(ObsExportTest, TextRendersEveryKind) {
  const std::string text = obs::ToText(MakeSnapshot());
  EXPECT_NE(text.find("a.hits"), std::string::npos);
  EXPECT_NE(text.find("pool.frames"), std::string::npos);
  EXPECT_NE(text.find("phase.x"), std::string::npos);
  EXPECT_NE(text.find("overflow"), std::string::npos);
}

TEST(ObsExportTest, EmptySnapshotRendersEmptyObject) {
  const std::string json = obs::ToJson(obs::Snapshot{});
  EXPECT_EQ(json,
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, "
            "\"timers\": {}}");
  EXPECT_EQ(obs::ToText(obs::Snapshot{}), "");
}

#ifndef ANNLIB_OBS_DISABLED

// ---- registry behaviour (instrumented build only; the disabled build
// stubs everything to zero by design).

TEST(ObsRegistryTest, HandlesAreStableAndShared) {
  obs::Registry reg;
  obs::Counter* c1 = reg.GetCounter("x.count");
  obs::Counter* c2 = reg.GetCounter("x.count");
  EXPECT_EQ(c1, c2);
  c1->Add(2);
  c2->Increment();
  EXPECT_EQ(c1->value(), 3u);
  // Growing the registry does not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("fill." + std::to_string(i));
  }
  EXPECT_EQ(c1->value(), 3u);
}

TEST(ObsRegistryTest, SnapshotIsSortedAndDeterministic) {
  obs::Registry reg;
  reg.GetCounter("z.last")->Add(1);
  reg.GetCounter("a.first")->Add(2);
  reg.GetCounter("m.middle")->Add(3);
  reg.GetGauge("g.gauge")->Set(-7);
  reg.GetHistogram("h.hist", {1.0, 10.0})->Record(5);
  reg.GetTimer("t.timer")->RecordNanos(1000);

  const obs::Snapshot s1 = reg.TakeSnapshot();
  ASSERT_EQ(s1.counters.size(), 3u);
  EXPECT_EQ(s1.counters[0].first, "a.first");
  EXPECT_EQ(s1.counters[1].first, "m.middle");
  EXPECT_EQ(s1.counters[2].first, "z.last");
  EXPECT_EQ(s1.counters[2].second, 1u);

  // Two snapshots of unchanged state render byte-identically.
  const obs::Snapshot s2 = reg.TakeSnapshot();
  EXPECT_EQ(obs::ToJson(s1), obs::ToJson(s2));
}

TEST(ObsRegistryTest, ResetAllZeroesButKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter* c = reg.GetCounter("c");
  obs::Histogram* h = reg.GetHistogram("h", {1.0});
  c->Add(5);
  h->Record(0.5);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("c"), c);  // same handle survives
}

TEST(ObsHistogramTest, BucketBoundariesAndOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // Bucket layout: [<1, <2, <4, >=4 (overflow)].
  h.Record(0.0);   // bucket 0
  h.Record(0.99);  // bucket 0
  h.Record(1.0);   // bucket 1 (boundary value goes up)
  h.Record(3.99);  // bucket 2
  h.Record(4.0);   // overflow
  h.Record(1e9);   // overflow
  const obs::HistogramSnapshot snap = h.TakeSnapshot("h");
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(ObsHistogramTest, EmptyHistogramReportsZeroMinMax) {
  obs::Histogram h({1.0});
  const obs::HistogramSnapshot snap = h.TakeSnapshot("h");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(ObsScopeTest, NestedScopesEachRecordTheirOwnInterval) {
  obs::PhaseTimer outer;
  obs::PhaseTimer inner;
  {
    obs::ObsScope outer_scope(&outer);
    {
      obs::ObsScope inner_scope(&inner);
      // Burn a little time so the intervals are non-trivial.
      volatile double sink = 0;
      // Plain assignment: compound assignment on volatile is deprecated
      // in C++20.
      for (int i = 0; i < 10000; ++i) sink = sink + i * 0.5;
    }
  }
  EXPECT_EQ(outer.calls(), 1u);
  EXPECT_EQ(inner.calls(), 1u);
  // The inner interval is contained in the outer one.
  EXPECT_GE(outer.total_ns(), inner.total_ns());
}

TEST(ObsScopeTest, StopIsIdempotent) {
  obs::PhaseTimer t;
  obs::ObsScope scope(&t);
  scope.Stop();
  scope.Stop();  // second stop must not double-record
  EXPECT_EQ(t.calls(), 1u);
}

#endif  // !ANNLIB_OBS_DISABLED

// ---- counter regression: MBA on a fixed seeded dataset must report
// exactly these PruneStats. Any change to the pruning logic, the metric
// implementations, the LPQ admission rules, or the quadtree construction
// shows up here as a precise counter diff instead of a silent perf
// regression. (PruneStats is engine-side, so this holds in both builds.)

TEST(ObsCounterRegressionTest, MbaOnSeededUniformReportsExactCounters) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 2000;
  spec.distribution = Distribution::kUniform;
  spec.seed = 42;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(data, &r, &s);

  ASSERT_OK_AND_ASSIGN(Mbrqt qt_r, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qt_s, Mbrqt::Build(s));
  const MemIndexView ir(&qt_r.Finalize());
  const MemIndexView is(&qt_s.Finalize());

  AnnOptions options;  // k = 1, NXNDIST, depth-first, bi-directional
  PruneStats stats;
  std::vector<NeighborList> out;
  ASSERT_OK(AllNearestNeighbors(ir, is, options, &out, &stats));
  EXPECT_EQ(out.size(), r.size());

  EXPECT_EQ(stats.pruned_on_entry, 260323u);
  EXPECT_EQ(stats.r_nodes_expanded, 5u);
  EXPECT_EQ(stats.lpqs_created, 1005u);
  EXPECT_EQ(stats.s_nodes_expanded, 1061u);
  EXPECT_EQ(stats.enqueued, 8727u);
}

}  // namespace
}  // namespace ann
