#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "ann/mba.h"
#include "datagen/gstd.h"
#include "index/mbrqt/mbrqt.h"
#include "index/node_format.h"
#include "obs/export.h"
#include "test_util.h"

namespace ann {
namespace {

// ---- exporter tests: operate on hand-built Snapshots, so they hold in
// both the instrumented and the ANNLIB_OBS_DISABLED build.

TEST(ObsExportTest, JsonEscape) {
  EXPECT_EQ(obs::JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(obs::JsonEscape("quote\"back\\slash"), "quote\\\"back\\\\slash");
  EXPECT_EQ(obs::JsonEscape("line\nfeed\ttab\rret"),
            "line\\nfeed\\ttab\\rret");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  EXPECT_EQ(obs::JsonEscape("\b\f"), "\\b\\f");
}

TEST(ObsExportTest, JsonEscapeEmbeddedNul) {
  // A NUL inside the view must become a backslash-u0000 escape, not terminate
  // the string.
  EXPECT_EQ(obs::JsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\0", 1)), "\\u0000");
}

TEST(ObsExportTest, JsonEscapeUtf8MultibytePassesThrough) {
  // JSON strings carry UTF-8 natively; bytes >= 0x80 must not be escaped
  // (escaping per byte would corrupt multibyte sequences).
  EXPECT_EQ(obs::JsonEscape("héllo"), "héllo");
  EXPECT_EQ(obs::JsonEscape("\xE2\x82\xAC"), "\xE2\x82\xAC");  // €
  EXPECT_EQ(obs::JsonEscape("\xF0\x9F\x90\x9B"), "\xF0\x9F\x90\x9B");
}

TEST(ObsExportTest, JsonEscapeLoneSurrogateBytesPassThrough) {
  // CESU-style encoding of a lone surrogate (ED A0 80 = U+D800): invalid
  // UTF-8, but the escaper is byte-transparent above 0x1f — garbage in,
  // the same garbage out, never a mangled mix.
  const std::string lone("\xED\xA0\x80", 3);
  EXPECT_EQ(obs::JsonEscape(lone), lone);
}

TEST(ObsExportTest, JsonEscapeAllControlChars) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = obs::JsonEscape(in);
    // Every control char is escaped one way or another...
    EXPECT_GE(out.size(), 2u) << "char " << c;
    EXPECT_EQ(out[0], '\\') << "char " << c;
  }
  // ...and DEL (0x7f) is not a JSON-mandated escape: passes through.
  EXPECT_EQ(obs::JsonEscape("\x7f"), "\x7f");
}

obs::Snapshot MakeSnapshot() {
  obs::Snapshot snap;
  snap.counters.emplace_back("a.hits", 3);
  snap.counters.emplace_back("b.misses", 0);
  snap.gauges.emplace_back("pool.frames", -2);
  obs::HistogramSnapshot h;
  h.name = "lat\"ency";  // exercises key escaping
  h.bounds = {1.0, 2.5};
  h.buckets = {4, 0, 1};
  h.count = 5;
  h.sum = 7.5;
  h.min = 0.5;
  h.max = 3.0;
  snap.histograms.push_back(h);
  obs::TimerSnapshot t;
  t.name = "phase.x";
  t.calls = 2;
  t.total_ns = 3000000;  // 3 ms
  snap.timers.push_back(t);
  return snap;
}

TEST(ObsExportTest, JsonShape) {
  const std::string json = obs::ToJson(MakeSnapshot());
  EXPECT_EQ(json,
            "{\"counters\": {\"a.hits\": 3, \"b.misses\": 0}, "
            "\"gauges\": {\"pool.frames\": -2}, "
            "\"histograms\": {\"lat\\\"ency\": {\"count\": 5, \"sum\": 7.5, "
            "\"min\": 0.5, \"max\": 3, "
            "\"p50\": 0.8125, \"p90\": 2.75, \"p99\": 2.975, "
            "\"bounds\": [1, 2.5], "
            "\"buckets\": [4, 0, 1]}}, "
            "\"timers\": {\"phase.x\": {\"calls\": 2, \"total_ms\": 3, "
            "\"mean_ms\": 1.5, "
            "\"p50_ms\": 0, \"p90_ms\": 0, \"p99_ms\": 0, "
            "\"latency_bounds_ns\": [], \"latency_buckets\": []}}}");
}

// ---- percentile estimation on HistogramSnapshot (shared struct, both
// builds): interpolated within the covering bucket, clipped to [min, max].

TEST(ObsPercentileTest, UniformSamplesMatchAnalyticQuantiles) {
  // 1000 samples 0..999, 100 per bucket (bounds 100, 200, ..., 900 plus
  // the overflow bucket). The estimator is exact at bucket edges and
  // within one bucket width elsewhere.
  obs::HistogramSnapshot h;
  h.bounds = obs::LinearBounds(100, 100, 9);
  h.buckets.assign(10, 100);
  h.count = 1000;
  h.min = 0;
  h.max = 999;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 500.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.9), 900.0);
  // p99 lands in the overflow bucket, interpolated up to max:
  // 900 + 0.9 * (999 - 900) = 989.1 (true p99 of the sample is 989).
  EXPECT_NEAR(h.Percentile(0.99), 989.1, 1e-9);
  EXPECT_NEAR(h.Percentile(0.25), 250.0, 1e-9);
}

TEST(ObsPercentileTest, ClipsToObservedRange) {
  // All five samples sit in one bucket whose nominal range [0, 10) is far
  // wider than the observed [2, 4]: interpolation must use min/max, not
  // the bucket edges.
  obs::HistogramSnapshot h;
  h.bounds = {10.0};
  h.buckets = {5, 0};
  h.count = 5;
  h.min = 2;
  h.max = 4;
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
  EXPECT_GE(h.Percentile(0.99), 2.0);
  EXPECT_LE(h.Percentile(0.99), 4.0);
}

TEST(ObsPercentileTest, EmptyHistogramReturnsZero) {
  obs::HistogramSnapshot h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  h.bounds = {1.0, 2.0};
  h.buckets = {0, 0, 0};
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(ObsPercentileTest, SkipsEmptyBucketsAndIsMonotone) {
  obs::HistogramSnapshot h;
  h.bounds = {1.0, 2.0, 3.0};
  h.buckets = {2, 0, 0, 2};  // bimodal: low bucket and overflow only
  h.count = 4;
  h.min = 0.5;
  h.max = 3.5;
  double prev = h.Percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = h.Percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, h.min);
    EXPECT_LE(v, h.max);
    prev = v;
  }
  // The median must come from a non-empty bucket: at q=0.5 the rank (2)
  // is covered by the first bucket, giving its upper edge.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 1.0);
}

// ---- AppendDouble: shortest representation that parses back to the
// exact same bits (falls back to %.17g when %g loses precision).

std::string RenderDouble(double v) {
  std::string out;
  obs::AppendDouble(&out, v);
  return out;
}

TEST(ObsAppendDoubleTest, ShortValuesStayShort) {
  EXPECT_EQ(RenderDouble(0.0), "0");
  EXPECT_EQ(RenderDouble(1.0), "1");
  EXPECT_EQ(RenderDouble(0.5), "0.5");
  EXPECT_EQ(RenderDouble(0.1), "0.1");  // %g "0.1" parses back exactly
  EXPECT_EQ(RenderDouble(-2.5), "-2.5");
}

TEST(ObsAppendDoubleTest, RoundTripsExactBits) {
  const double cases[] = {
      1.0 / 3.0,                  // needs 17 significant digits
      0.1 + 0.2,                  // famously != 0.3
      4.9406564584124654e-324,    // smallest positive denormal
      2.2250738585072014e-308,    // smallest positive normal
      1.7976931348623157e308,     // DBL_MAX
      -0.0,                       // sign must survive
      123456789.123456789,
  };
  for (const double v : cases) {
    const std::string s = RenderDouble(v);
    const double parsed = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof v), 0)
        << "rendered \"" << s << "\" for " << v;
  }
  // -0.0 keeps its sign bit through the round trip.
  EXPECT_EQ(RenderDouble(-0.0)[0], '-');
}

TEST(ObsAppendDoubleTest, NonFiniteClampsToJsonSafeValues) {
  // JSON has no Infinity/NaN tokens; the exporter substitutes huge
  // finite sentinels so the document stays parseable.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(RenderDouble(inf), "1e308");
  EXPECT_EQ(RenderDouble(-inf), "-1e308");
  const std::string nan_s = RenderDouble(std::numeric_limits<double>::quiet_NaN());
  const double parsed = std::strtod(nan_s.c_str(), nullptr);
  EXPECT_TRUE(std::isfinite(parsed));
}

TEST(ObsExportTest, JsonIsDeterministic) {
  EXPECT_EQ(obs::ToJson(MakeSnapshot()), obs::ToJson(MakeSnapshot()));
}

TEST(ObsExportTest, TextRendersEveryKind) {
  const std::string text = obs::ToText(MakeSnapshot());
  EXPECT_NE(text.find("a.hits"), std::string::npos);
  EXPECT_NE(text.find("pool.frames"), std::string::npos);
  EXPECT_NE(text.find("phase.x"), std::string::npos);
  EXPECT_NE(text.find("overflow"), std::string::npos);
}

TEST(ObsExportTest, EmptySnapshotRendersEmptyObject) {
  const std::string json = obs::ToJson(obs::Snapshot{});
  EXPECT_EQ(json,
            "{\"counters\": {}, \"gauges\": {}, \"histograms\": {}, "
            "\"timers\": {}}");
  EXPECT_EQ(obs::ToText(obs::Snapshot{}), "");
}

#ifndef ANNLIB_OBS_DISABLED

// ---- registry behaviour (instrumented build only; the disabled build
// stubs everything to zero by design).

TEST(ObsRegistryTest, HandlesAreStableAndShared) {
  obs::Registry reg;
  obs::Counter* c1 = reg.GetCounter("x.count");
  obs::Counter* c2 = reg.GetCounter("x.count");
  EXPECT_EQ(c1, c2);
  c1->Add(2);
  c2->Increment();
  EXPECT_EQ(c1->value(), 3u);
  // Growing the registry does not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("fill." + std::to_string(i));
  }
  EXPECT_EQ(c1->value(), 3u);
}

TEST(ObsRegistryTest, SnapshotIsSortedAndDeterministic) {
  obs::Registry reg;
  reg.GetCounter("z.last")->Add(1);
  reg.GetCounter("a.first")->Add(2);
  reg.GetCounter("m.middle")->Add(3);
  reg.GetGauge("g.gauge")->Set(-7);
  reg.GetHistogram("h.hist", {1.0, 10.0})->Record(5);
  reg.GetTimer("t.timer")->RecordNanos(1000);

  const obs::Snapshot s1 = reg.TakeSnapshot();
  ASSERT_EQ(s1.counters.size(), 3u);
  EXPECT_EQ(s1.counters[0].first, "a.first");
  EXPECT_EQ(s1.counters[1].first, "m.middle");
  EXPECT_EQ(s1.counters[2].first, "z.last");
  EXPECT_EQ(s1.counters[2].second, 1u);

  // Two snapshots of unchanged state render byte-identically.
  const obs::Snapshot s2 = reg.TakeSnapshot();
  EXPECT_EQ(obs::ToJson(s1), obs::ToJson(s2));
}

TEST(ObsRegistryTest, ResetAllZeroesButKeepsRegistrations) {
  obs::Registry reg;
  obs::Counter* c = reg.GetCounter("c");
  obs::Histogram* h = reg.GetHistogram("h", {1.0});
  c->Add(5);
  h->Record(0.5);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("c"), c);  // same handle survives
}

TEST(ObsHistogramTest, BucketBoundariesAndOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // Bucket layout: [<1, <2, <4, >=4 (overflow)].
  h.Record(0.0);   // bucket 0
  h.Record(0.99);  // bucket 0
  h.Record(1.0);   // bucket 1 (boundary value goes up)
  h.Record(3.99);  // bucket 2
  h.Record(4.0);   // overflow
  h.Record(1e9);   // overflow
  const obs::HistogramSnapshot snap = h.TakeSnapshot("h");
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e9);
}

TEST(ObsHistogramTest, EmptyHistogramReportsZeroMinMax) {
  obs::Histogram h({1.0});
  const obs::HistogramSnapshot snap = h.TakeSnapshot("h");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(ObsScopeTest, NestedScopesEachRecordTheirOwnInterval) {
  obs::PhaseTimer outer;
  obs::PhaseTimer inner;
  {
    obs::ObsScope outer_scope(&outer);
    {
      obs::ObsScope inner_scope(&inner);
      // Burn a little time so the intervals are non-trivial.
      volatile double sink = 0;
      // Plain assignment: compound assignment on volatile is deprecated
      // in C++20.
      for (int i = 0; i < 10000; ++i) sink = sink + i * 0.5;
    }
  }
  EXPECT_EQ(outer.calls(), 1u);
  EXPECT_EQ(inner.calls(), 1u);
  // The inner interval is contained in the outer one.
  EXPECT_GE(outer.total_ns(), inner.total_ns());
}

TEST(ObsScopeTest, StopIsIdempotent) {
  obs::PhaseTimer t;
  obs::ObsScope scope(&t);
  scope.Stop();
  scope.Stop();  // second stop must not double-record
  EXPECT_EQ(t.calls(), 1u);
}

#endif  // !ANNLIB_OBS_DISABLED

// ---- counter regression: MBA on a fixed seeded dataset must report
// exactly these PruneStats. Any change to the pruning logic, the metric
// implementations, the LPQ admission rules, or the quadtree construction
// shows up here as a precise counter diff instead of a silent perf
// regression. (PruneStats is engine-side, so this holds in both builds.)

TEST(ObsCounterRegressionTest, MbaOnSeededUniformReportsExactCounters) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 2000;
  spec.distribution = Distribution::kUniform;
  spec.seed = 42;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  Dataset r, s;
  SplitHalves(data, &r, &s);

  ASSERT_OK_AND_ASSIGN(Mbrqt qt_r, Mbrqt::Build(r));
  ASSERT_OK_AND_ASSIGN(Mbrqt qt_s, Mbrqt::Build(s));
  const MemIndexView ir(&qt_r.Finalize());
  const MemIndexView is(&qt_s.Finalize());

  AnnOptions options;  // k = 1, NXNDIST, depth-first, bi-directional
  PruneStats stats;
  std::vector<NeighborList> out;
  ASSERT_OK(AllNearestNeighbors(ir, is, options, &out, &stats));
  EXPECT_EQ(out.size(), r.size());

  EXPECT_EQ(stats.pruned_on_entry, 260323u);
  EXPECT_EQ(stats.r_nodes_expanded, 5u);
  EXPECT_EQ(stats.lpqs_created, 1005u);
  EXPECT_EQ(stats.s_nodes_expanded, 1061u);
  EXPECT_EQ(stats.enqueued, 8727u);
}

}  // namespace
}  // namespace ann
