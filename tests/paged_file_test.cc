#include "storage/paged_file.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

class PagedFileTest : public ::testing::Test {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 8};
};

TEST_F(PagedFileTest, AppendAndReadRecords) {
  PagedFile file(&pool_, 16);
  char rec[16];
  for (int i = 0; i < 1000; ++i) {
    std::snprintf(rec, sizeof(rec), "rec-%d", i);
    ASSERT_OK(file.Append(rec));
  }
  ASSERT_OK(file.Finish());
  EXPECT_EQ(file.record_count(), 1000u);
  EXPECT_EQ(file.records_per_page(), kPageSize / 16);

  char out[16];
  for (int i : {0, 1, 511, 512, 999}) {
    ASSERT_OK(file.ReadRecord(i, out));
    char expect[16];
    std::snprintf(expect, sizeof(expect), "rec-%d", i);
    EXPECT_STREQ(out, expect);
  }
}

TEST_F(PagedFileTest, PageAccounting) {
  PagedFile file(&pool_, kPageSize / 4);  // 4 records per page
  char rec[kPageSize / 4] = {0};
  for (int i = 0; i < 10; ++i) ASSERT_OK(file.Append(rec));
  ASSERT_OK(file.Finish());
  EXPECT_EQ(file.page_count(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(file.PageRecordCount(0), 4u);
  EXPECT_EQ(file.PageRecordCount(1), 4u);
  EXPECT_EQ(file.PageRecordCount(2), 2u);
  EXPECT_EQ(file.PageFirstRecord(2), 8u);
}

TEST_F(PagedFileTest, ReadPageReturnsAllRecords) {
  PagedFile file(&pool_, 8);
  uint64_t v;
  for (uint64_t i = 0; i < 2500; ++i) {
    v = i * 3;
    ASSERT_OK(file.Append(reinterpret_cast<const char*>(&v)));
  }
  ASSERT_OK(file.Finish());
  std::vector<char> buf;
  size_t count = 0;
  ASSERT_OK(file.ReadPage(1, &buf, &count));
  EXPECT_EQ(count, kPageSize / 8);
  uint64_t first;
  std::memcpy(&first, buf.data(), 8);
  EXPECT_EQ(first, (kPageSize / 8) * 3);
}

TEST_F(PagedFileTest, ErrorsOnMisuse) {
  PagedFile file(&pool_, 8);
  char rec[8] = {0};
  ASSERT_OK(file.Append(rec));
  char out[8];
  EXPECT_TRUE(file.ReadRecord(0, out).IsInvalidArgument());  // not finished
  ASSERT_OK(file.Finish());
  EXPECT_TRUE(file.Append(rec).IsInvalidArgument());  // after finish
  EXPECT_TRUE(file.ReadRecord(5, out).IsOutOfRange());
  std::vector<char> buf;
  size_t count;
  EXPECT_TRUE(file.ReadPage(9, &buf, &count).IsOutOfRange());
}

TEST_F(PagedFileTest, EmptyFileFinishes) {
  PagedFile file(&pool_, 8);
  ASSERT_OK(file.Finish());
  EXPECT_EQ(file.record_count(), 0u);
  EXPECT_EQ(file.page_count(), 0u);
}

TEST(PagedFileDiskErrorTest, ShortReadSurfacesThroughThePool) {
  const std::string path = ::testing::TempDir() + "/paged_file_short.pages";
  ASSERT_OK_AND_ASSIGN(auto disk, FileDiskManager::Create(path));
  BufferPool pool(disk.get(), 2);
  PagedFile file(&pool, kPageSize / 2);  // 2 records per page
  char rec[kPageSize / 2] = {3};
  for (int i = 0; i < 8; ++i) ASSERT_OK(file.Append(rec));  // 4 pages
  ASSERT_OK(file.Finish());
  ASSERT_OK(pool.FlushAll());
  // Pull pages 0 and 1 into the two frames so every later page is a miss
  // that must hit the (about to be chopped) file.
  char out[kPageSize / 2];
  ASSERT_OK(file.ReadRecord(0, out));
  ASSERT_OK(file.ReadRecord(2, out));
  ASSERT_EQ(::truncate(path.c_str(), kPageSize + 100), 0);
  const Status s = file.ReadRecord(5, out);  // page 2: past the new EOF
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_NE(s.ToString().find("short transfer"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(PagedFileDiskErrorTest, MmapGrowthFailureSurfacesThroughAppend) {
  const std::string path = ::testing::TempDir() + "/paged_file_grow.pages";
  MmapDiskManager::Options opt;
  opt.segment_pages = 1;  // every page allocation grows a segment
  ASSERT_OK_AND_ASSIGN(auto disk, MmapDiskManager::Create(path, opt));
  BufferPool pool(disk.get(), 4);
  PagedFile file(&pool, kPageSize);  // 1 record per page: Append allocates
  char rec[kPageSize] = {9};
  ASSERT_OK(file.Append(rec));
  disk->SetFailpointForTest(MmapDiskManager::Failpoint::kMmap);
  const Status s = file.Append(rec);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  // One-shot failpoint: the file keeps working afterwards.
  ASSERT_OK(file.Append(rec));
  ASSERT_OK(file.Finish());
  std::remove(path.c_str());
}

TEST_F(PagedFileTest, RereadsCostPoolMissesUnderSmallPool) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  PagedFile file(&pool, 64);
  char rec[64] = {1};
  for (int i = 0; i < 2000; ++i) ASSERT_OK(file.Append(rec));
  ASSERT_OK(file.Finish());
  pool.ResetStats();
  // Two full scans: the second scan cannot be cached in 2 frames.
  char out[64];
  for (int scan = 0; scan < 2; ++scan) {
    for (uint64_t i = 0; i < file.record_count(); i += 64) {
      ASSERT_OK(file.ReadRecord(i, out));
    }
  }
  EXPECT_GT(pool.stats().pool_misses, file.page_count());
}

}  // namespace
}  // namespace ann
