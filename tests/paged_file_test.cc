#include "storage/paged_file.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

class PagedFileTest : public ::testing::Test {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 8};
};

TEST_F(PagedFileTest, AppendAndReadRecords) {
  PagedFile file(&pool_, 16);
  char rec[16];
  for (int i = 0; i < 1000; ++i) {
    std::snprintf(rec, sizeof(rec), "rec-%d", i);
    ASSERT_OK(file.Append(rec));
  }
  ASSERT_OK(file.Finish());
  EXPECT_EQ(file.record_count(), 1000u);
  EXPECT_EQ(file.records_per_page(), kPageSize / 16);

  char out[16];
  for (int i : {0, 1, 511, 512, 999}) {
    ASSERT_OK(file.ReadRecord(i, out));
    char expect[16];
    std::snprintf(expect, sizeof(expect), "rec-%d", i);
    EXPECT_STREQ(out, expect);
  }
}

TEST_F(PagedFileTest, PageAccounting) {
  PagedFile file(&pool_, kPageSize / 4);  // 4 records per page
  char rec[kPageSize / 4] = {0};
  for (int i = 0; i < 10; ++i) ASSERT_OK(file.Append(rec));
  ASSERT_OK(file.Finish());
  EXPECT_EQ(file.page_count(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(file.PageRecordCount(0), 4u);
  EXPECT_EQ(file.PageRecordCount(1), 4u);
  EXPECT_EQ(file.PageRecordCount(2), 2u);
  EXPECT_EQ(file.PageFirstRecord(2), 8u);
}

TEST_F(PagedFileTest, ReadPageReturnsAllRecords) {
  PagedFile file(&pool_, 8);
  uint64_t v;
  for (uint64_t i = 0; i < 2500; ++i) {
    v = i * 3;
    ASSERT_OK(file.Append(reinterpret_cast<const char*>(&v)));
  }
  ASSERT_OK(file.Finish());
  std::vector<char> buf;
  size_t count = 0;
  ASSERT_OK(file.ReadPage(1, &buf, &count));
  EXPECT_EQ(count, kPageSize / 8);
  uint64_t first;
  std::memcpy(&first, buf.data(), 8);
  EXPECT_EQ(first, (kPageSize / 8) * 3);
}

TEST_F(PagedFileTest, ErrorsOnMisuse) {
  PagedFile file(&pool_, 8);
  char rec[8] = {0};
  ASSERT_OK(file.Append(rec));
  char out[8];
  EXPECT_TRUE(file.ReadRecord(0, out).IsInvalidArgument());  // not finished
  ASSERT_OK(file.Finish());
  EXPECT_TRUE(file.Append(rec).IsInvalidArgument());  // after finish
  EXPECT_TRUE(file.ReadRecord(5, out).IsOutOfRange());
  std::vector<char> buf;
  size_t count;
  EXPECT_TRUE(file.ReadPage(9, &buf, &count).IsOutOfRange());
}

TEST_F(PagedFileTest, EmptyFileFinishes) {
  PagedFile file(&pool_, 8);
  ASSERT_OK(file.Finish());
  EXPECT_EQ(file.record_count(), 0u);
  EXPECT_EQ(file.page_count(), 0u);
}

TEST_F(PagedFileTest, RereadsCostPoolMissesUnderSmallPool) {
  MemDiskManager disk;
  BufferPool pool(&disk, 2);
  PagedFile file(&pool, 64);
  char rec[64] = {1};
  for (int i = 0; i < 2000; ++i) ASSERT_OK(file.Append(rec));
  ASSERT_OK(file.Finish());
  pool.ResetStats();
  // Two full scans: the second scan cannot be cached in 2 frames.
  char out[64];
  for (int scan = 0; scan < 2; ++scan) {
    for (uint64_t i = 0; i < file.record_count(); i += 64) {
      ASSERT_OK(file.ReadRecord(i, out));
    }
  }
  EXPECT_GT(pool.stats().pool_misses, file.page_count());
}

}  // namespace
}  // namespace ann
