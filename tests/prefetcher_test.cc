#include "storage/prefetcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "test_util.h"

namespace ann {
namespace {

/// Allocates `n` pages on `disk`, stamps each with a recognizable byte,
/// and leaves them flushed and uncached (the writer pool is destroyed).
std::vector<PageId> SeedPages(DiskManager* disk, int n) {
  std::vector<PageId> ids;
  BufferPool writer(disk, static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto page = writer.NewPage();
    EXPECT_TRUE(page.ok()) << page.status().ToString();
    std::memset(page->data(), 0x40 + i, kPageSize);
    page->MarkDirty();
    ids.push_back(page->page_id());
  }
  EXPECT_TRUE(writer.FlushAll().ok());
  return ids;
}

/// Polls `pred` for up to two seconds — the worker thread drains hints
/// asynchronously, so tests wait for effects instead of sleeping blind.
template <typename Pred>
bool WaitFor(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(BufferPoolPrefetchTest, AdmittedPageTurnsTheDemandMissIntoAHit) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 4);
  BufferPool pool(&disk, 8);
  Page scratch;
  ASSERT_TRUE(pool.PrefetchPage(ids[0], PageSnapshot(), &scratch));
  EXPECT_EQ(pool.stats().pool_misses, 0u);
  ASSERT_OK_AND_ASSIGN(PinnedPage p, pool.Fetch(ids[0]));
  EXPECT_EQ(pool.stats().pool_misses, 0u) << "prefetched page must be a hit";
  EXPECT_EQ(pool.stats().pool_hits, 1u);
  EXPECT_EQ(static_cast<unsigned char>(p.data()[0]), 0x40u);
}

TEST(BufferPoolPrefetchTest, AdmissionBudgetIsAQuarterOfCapacity) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 4);
  BufferPool pool(&disk, 8);  // budget = 8/4 = 2 outstanding hints
  Page scratch;
  EXPECT_TRUE(pool.PrefetchPage(ids[0], PageSnapshot(), &scratch));
  EXPECT_TRUE(pool.PrefetchPage(ids[1], PageSnapshot(), &scratch));
  EXPECT_FALSE(pool.PrefetchPage(ids[2], PageSnapshot(), &scratch))
      << "third outstanding hint must exceed the capacity/4 budget";
  // A demand pin consumes the hint and refunds the budget slot.
  ASSERT_OK(pool.Fetch(ids[0]).status());
  EXPECT_TRUE(pool.PrefetchPage(ids[2], PageSnapshot(), &scratch));
}

TEST(BufferPoolPrefetchTest, ResidentPageDeclinesTheHint) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 2);
  BufferPool pool(&disk, 8);
  ASSERT_OK(pool.Fetch(ids[0]).status());
  Page scratch;
  EXPECT_FALSE(pool.PrefetchPage(ids[0], PageSnapshot(), &scratch));
}

TEST(BufferPoolPrefetchTest, NeverEvictsDirtyFrames) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 3);
  BufferPool pool(&disk, 2);
  // Fill both frames with dirtied (but unpinned) pages: no clean victim
  // exists, so the hint must be declined rather than force a write-back.
  for (int i = 0; i < 2; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage p, pool.Fetch(ids[i]));
    p.MarkDirty();
  }
  Page scratch;
  EXPECT_FALSE(pool.PrefetchPage(ids[2], PageSnapshot(), &scratch));
  ASSERT_OK(pool.FlushAll());
  // Once clean, the coldest frame is fair game.
  EXPECT_TRUE(pool.PrefetchPage(ids[2], PageSnapshot(), &scratch));
}

TEST(BufferPoolPrefetchTest, ClockAdmitsIntoFreeFramesOnly) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 3);
  BufferPool pool(&disk, 8, Replacement::kClock);
  Page scratch;
  EXPECT_TRUE(pool.PrefetchPage(ids[0], PageSnapshot(), &scratch));

  BufferPool tiny(&disk, 2, Replacement::kClock);
  ASSERT_OK(tiny.Fetch(ids[0]).status());
  ASSERT_OK(tiny.Fetch(ids[1]).status());
  // Both frames occupied (clean, unpinned): LRU would evict for the hint,
  // CLOCK declines instead of sweeping the hand on advisory work.
  EXPECT_FALSE(tiny.PrefetchPage(ids[2], PageSnapshot(), &scratch));
}

TEST(BufferPoolPrefetchTest, VersionedPoolRequiresASnapshot) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 3);
  BufferPool pool(&disk, 8);
  ASSERT_OK(pool.BeginWriteBatch());
  ASSERT_OK(pool.CommitWriteBatch());  // pool is versioned from here on
  Page scratch;
  EXPECT_FALSE(pool.PrefetchPage(ids[0], PageSnapshot(), &scratch))
      << "no epoch pin -> no ABA defense for the latch-free read";
  ASSERT_OK_AND_ASSIGN(const PageSnapshot snap, pool.OpenSnapshot());
  EXPECT_TRUE(pool.PrefetchPage(ids[0], snap, &scratch));
}

TEST(PrefetcherTest, WorkerWarmsHintedPages) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 3);
  BufferPool pool(&disk, 16);  // budget 4: all three hints admissible
  Prefetcher prefetcher(&pool);
  for (const PageId id : ids) {
    EXPECT_TRUE(prefetcher.Enqueue(id, PageSnapshot()));
  }
  EXPECT_EQ(prefetcher.issued(), 3u);
  ASSERT_TRUE(WaitFor([&] { return pool.Stats().cached_pages == 3; }))
      << "worker never warmed the hinted pages";
  pool.ResetStats();
  for (const PageId id : ids) {
    ASSERT_OK(pool.Fetch(id).status());
  }
  EXPECT_EQ(pool.stats().pool_misses, 0u);
  EXPECT_EQ(pool.stats().pool_hits, 3u);
}

TEST(PrefetcherTest, DeclinedAdmissionCountsAsDropped) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 1);
  BufferPool pool(&disk, 8);
  Prefetcher prefetcher(&pool);
  // An unallocated page id fails the disk read inside PrefetchPage; the
  // worker counts the declined hint, and correctness is unaffected.
  EXPECT_TRUE(prefetcher.Enqueue(ids[0] + 100, PageSnapshot()));
  ASSERT_TRUE(WaitFor([&] { return prefetcher.dropped() == 1; }));
  EXPECT_TRUE(prefetcher.Enqueue(ids[0], PageSnapshot()));
  ASSERT_TRUE(WaitFor([&] { return pool.Stats().cached_pages == 1; }));
}

TEST(PrefetcherTest, StopIsIdempotentAndEnqueueAfterStopDrops) {
  MemDiskManager disk;
  const std::vector<PageId> ids = SeedPages(&disk, 1);
  BufferPool pool(&disk, 8);
  Prefetcher prefetcher(&pool);
  prefetcher.Stop();
  prefetcher.Stop();
  const uint64_t dropped = prefetcher.dropped();
  EXPECT_FALSE(prefetcher.Enqueue(ids[0], PageSnapshot()));
  EXPECT_EQ(prefetcher.dropped(), dropped + 1);
  EXPECT_EQ(pool.Stats().cached_pages, 0u);
}

}  // namespace
}  // namespace ann
