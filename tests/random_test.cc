#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ann {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 32; ++i) diffs += (a.Next() != b.Next());
  EXPECT_GT(diffs, 28);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(17);
  bool saw_zero = false, saw_max = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    saw_zero |= (v == 0);
    saw_max |= (v == 9);
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_max);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(33);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianScaleAndShift) {
  Rng rng(34);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ZipfSkewInUnitIntervalAndSkewed) {
  Rng rng(35);
  const int n = 50000;
  int low = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.ZipfSkew(0.9);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    low += (v < 0.1);
  }
  // Power-law mass concentrates near the origin: far more than the 10%
  // a uniform distribution would place below 0.1.
  EXPECT_GT(low, n / 4);
}

TEST(RngTest, ReseedResetsSequence) {
  Rng rng(50);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(50);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace ann
