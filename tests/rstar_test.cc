#include "index/rstar/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/gstd.h"
#include "index/paged_index_view.h"
#include "index/rstar/rstar_split.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<uint64_t> BruteRange(const Dataset& data, const Rect& range) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < data.size(); ++i) {
    if (range.ContainsPoint(data.point(i))) out.push_back(i);
  }
  return out;
}

void ExpectRangeQueriesMatch(const SpatialIndex& index, const Dataset& data,
                             uint64_t seed, int queries = 25) {
  Rng rng(seed);
  for (int q = 0; q < queries; ++q) {
    const Rect range = RandomRect(data.dim(), &rng);
    std::vector<uint64_t> got;
    ASSERT_OK(RangeQuery(index, range, &got));
    std::vector<uint64_t> want = BruteRange(data, range);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(RStarSplitTest, GroupsRespectMinEntriesAndPartition) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const int dim = 2 + static_cast<int>(rng.UniformInt(3));
    const int total = 10 + static_cast<int>(rng.UniformInt(40));
    const int min_entries = 2 + static_cast<int>(rng.UniformInt(total / 3));
    std::vector<MemEntry> entries(total);
    for (int i = 0; i < total; ++i) {
      entries[i].mbr = RandomRect(dim, &rng);
      entries[i].id = i;
    }
    std::vector<MemEntry> g1, g2;
    RStarSplit(entries, dim, min_entries, &g1, &g2);
    EXPECT_GE(static_cast<int>(g1.size()), min_entries);
    EXPECT_GE(static_cast<int>(g2.size()), min_entries);
    EXPECT_EQ(g1.size() + g2.size(), entries.size());
    std::vector<uint64_t> ids;
    for (const auto& e : g1) ids.push_back(e.id);
    for (const auto& e : g2) ids.push_back(e.id);
    std::sort(ids.begin(), ids.end());
    for (int i = 0; i < total; ++i) EXPECT_EQ(ids[i], static_cast<uint64_t>(i));
  }
}

TEST(RStarSplitTest, SeparatesTwoObviousClusters) {
  // Two far-apart clusters must end up in different groups.
  std::vector<MemEntry> entries;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    Scalar p[2] = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
    entries.push_back({Rect::FromPoint(p, 2), static_cast<uint64_t>(i), -1});
  }
  for (int i = 0; i < 10; ++i) {
    Scalar p[2] = {rng.Uniform(100, 101), rng.Uniform(100, 101)};
    entries.push_back(
        {Rect::FromPoint(p, 2), static_cast<uint64_t>(10 + i), -1});
  }
  std::vector<MemEntry> g1, g2;
  RStarSplit(entries, 2, 4, &g1, &g2);
  const auto all_low = [](const std::vector<MemEntry>& g) {
    return std::all_of(g.begin(), g.end(),
                       [](const MemEntry& e) { return e.id < 10; });
  };
  const auto all_high = [](const std::vector<MemEntry>& g) {
    return std::all_of(g.begin(), g.end(),
                       [](const MemEntry& e) { return e.id >= 10; });
  };
  EXPECT_TRUE((all_low(g1) && all_high(g2)) || (all_low(g2) && all_high(g1)));
}

TEST(RStarTreeTest, DefaultCapacitiesFillAPage) {
  // Leaf entry: 8 id + dim*8; internal: 8 + dim*16; payload 8176.
  EXPECT_EQ(DefaultLeafCapacity(2), 8176 / 24);
  EXPECT_EQ(DefaultInternalCapacity(2), 8176 / 40);
  EXPECT_EQ(DefaultLeafCapacity(10), 8176 / 88);
  EXPECT_EQ(DefaultInternalCapacity(10), 8176 / 168);
}

class RStarInsertTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RStarInsertTest, InvariantsAndRangeQueriesAfterRandomInserts) {
  const auto [dim, count] = GetParam();
  const Dataset data = RandomDataset(dim, count, 42 + dim);
  // Small capacities force deep trees, splits, and reinserts.
  RStarOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  RStarTree tree(dim, opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  EXPECT_EQ(tree.num_objects(), data.size());
  ASSERT_OK(tree.CheckInvariants());
  EXPECT_GT(tree.height(), 1);

  const MemIndexView view(&tree.tree());
  ExpectRangeQueriesMatch(view, data, 7);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, RStarInsertTest,
    ::testing::Values(std::make_tuple(2, 2000), std::make_tuple(3, 1500),
                      std::make_tuple(6, 800), std::make_tuple(10, 500)));

TEST(RStarTreeTest, ClusteredDataKeepsInvariants) {
  GstdSpec spec;
  spec.dim = 2;
  spec.count = 3000;
  spec.distribution = Distribution::kClustered;
  spec.seed = 5;
  ASSERT_OK_AND_ASSIGN(const Dataset data, GenerateGstd(spec));
  RStarOptions opts;
  opts.leaf_capacity = 16;
  opts.internal_capacity = 8;
  RStarTree tree(2, opts);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_OK(tree.Insert(data.point(i), i));
  }
  ASSERT_OK(tree.CheckInvariants());
}

TEST(RStarTreeTest, DuplicatePointsAreAllRetained) {
  RStarOptions opts;
  opts.leaf_capacity = 4;
  opts.internal_capacity = 4;
  RStarTree tree(2, opts);
  const Scalar p[2] = {0.5, 0.5};
  for (int i = 0; i < 100; ++i) ASSERT_OK(tree.Insert(p, i));
  ASSERT_OK(tree.CheckInvariants());
  const MemIndexView view(&tree.tree());
  std::vector<uint64_t> got;
  const Scalar lo[2] = {0.4, 0.4}, hi[2] = {0.6, 0.6};
  ASSERT_OK(RangeQuery(view, Rect::FromBounds(lo, hi, 2), &got));
  EXPECT_EQ(got.size(), 100u);
}

TEST(RStarTreeTest, BulkLoadStrInvariantsAndQueries) {
  const Dataset data = RandomDataset(3, 5000, 77);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(data));
  EXPECT_EQ(tree.num_objects(), data.size());
  ASSERT_OK(tree.CheckInvariants(/*check_min_fill=*/false));
  const MemIndexView view(&tree.tree());
  ExpectRangeQueriesMatch(view, data, 13);
}

TEST(RStarTreeTest, BulkLoadSmallDatasetsAllSizes) {
  for (size_t n : {1u, 2u, 5u, 17u, 100u}) {
    const Dataset data = RandomDataset(2, n, 100 + n);
    ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(data));
    EXPECT_EQ(tree.num_objects(), n);
    ASSERT_OK(tree.CheckInvariants(/*check_min_fill=*/false));
    const MemIndexView view(&tree.tree());
    std::vector<uint64_t> got;
    ASSERT_OK(RangeQuery(view, data.BoundingBox(), &got));
    EXPECT_EQ(got.size(), n);
  }
}

TEST(RStarTreeTest, BulkLoadPacksTighterThanInsertion) {
  const Dataset data = RandomDataset(2, 4000, 3);
  RStarOptions opts;  // default page-derived capacities
  ASSERT_OK_AND_ASSIGN(const RStarTree bulk, RStarTree::BulkLoadStr(data, opts));
  RStarTree inc(2, opts);
  for (size_t i = 0; i < data.size(); ++i) ASSERT_OK(inc.Insert(data.point(i), i));
  EXPECT_LE(bulk.tree().nodes.size(), inc.tree().nodes.size());
}

TEST(RStarTreeTest, PersistedViewMatchesMemView) {
  const Dataset data = RandomDataset(4, 3000, 21);
  ASSERT_OK_AND_ASSIGN(const RStarTree tree, RStarTree::BulkLoadStr(data));

  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  NodeStore store(&pool);
  ASSERT_OK_AND_ASSIGN(const PersistedIndexMeta meta,
                       PersistMemTree(tree.tree(), &store));
  EXPECT_EQ(meta.num_objects, data.size());
  EXPECT_EQ(meta.num_nodes, tree.tree().nodes.size());
  EXPECT_TRUE(meta.root_mbr == tree.tree().nodes[tree.tree().root].mbr);

  const PagedIndexView paged(&store, meta);
  ExpectRangeQueriesMatch(paged, data, 31);
}

}  // namespace
}  // namespace ann
