// Versioned buffer pool (copy-on-write batches + epoch snapshots) and
// end-to-end snapshot isolation through DynamicIndex, including the
// concurrent writer/reader contract: a query racing update batches
// returns results bit-identical to SOME committed state — entirely
// pre-batch or entirely post-batch, never a mixture.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "ann/nn_search.h"
#include "check/invariants.h"
#include "index/dynamic_index.h"
#include "obs/obs.h"
#include "storage/buffer_pool.h"
#include "storage/node_store.h"
#include "test_util.h"

namespace ann {
namespace {

Rect UnitSpace(int dim) {
  Rect space;
  space.dim = dim;
  for (int d = 0; d < dim; ++d) {
    space.lo[d] = 0;
    space.hi[d] = 1;
  }
  return space;
}

void FillPage(PinnedPage* page, char value) {
  std::memset(page->data(), value, kPageSize);
  page->MarkDirty();
}

class VersionedPoolTest : public ::testing::Test {
 protected:
  MemDiskManager disk_;
  BufferPool pool_{&disk_, 32};
};

TEST_F(VersionedPoolTest, SnapshotKeepsPreBatchBytes) {
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'A');
  }
  ASSERT_OK_AND_ASSIGN(const PageSnapshot snap, pool_.OpenSnapshot());
  EXPECT_TRUE(snap.valid());

  ASSERT_OK(pool_.BeginWriteBatch());
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
    EXPECT_EQ(page.page_id(), id);
    EXPECT_EQ(page.data()[0], 'A') << "clone must start from the source";
    FillPage(&page, 'B');
  }
  // Owner read-your-writes: a plain Fetch from the batch thread resolves
  // to the shadow clone before commit.
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.Fetch(id));
    EXPECT_EQ(page.data()[0], 'B');
  }
  ASSERT_OK(pool_.CommitWriteBatch());

  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.Fetch(id));
    EXPECT_EQ(page.data()[0], 'B');
  }
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.Fetch(id, snap));
    EXPECT_EQ(page.data()[0], 'A') << "snapshot must freeze the old bytes";
  }
  const VersionStats vs = pool_.version_stats();
  EXPECT_EQ(vs.cow_clones, 1u);
  EXPECT_EQ(vs.batches_committed, 1u);
  EXPECT_EQ(vs.pages_retired, 1u);
  EXPECT_EQ(vs.pages_reclaimed, 0u) << "snapshot pins the old version";
  ASSERT_OK(CheckBufferPoolInvariants(pool_));
}

TEST_F(VersionedPoolTest, EpochGcReclaimsAfterLastRelease) {
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'A');
  }
  {
    ASSERT_OK_AND_ASSIGN(const PageSnapshot snap, pool_.OpenSnapshot());
    ASSERT_OK(pool_.BeginWriteBatch());
    {
      ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
      FillPage(&page, 'B');
    }
    ASSERT_OK(pool_.CommitWriteBatch());
    EXPECT_EQ(pool_.version_stats().retired_pending, 1u);
    // snap dies here: the last reference to epoch 0 drains.
  }
  const VersionStats vs = pool_.version_stats();
  EXPECT_EQ(vs.pages_retired, vs.pages_reclaimed);
  EXPECT_EQ(vs.retired_pending, 0u);
  EXPECT_EQ(vs.free_physical, 1u);
  ASSERT_OK(CheckBufferPoolInvariants(pool_));

  // The reclaimed physical page backs the next clone instead of fresh
  // disk space.
  ASSERT_OK(pool_.BeginWriteBatch());
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
    FillPage(&page, 'C');
  }
  ASSERT_OK(pool_.CommitWriteBatch());
  EXPECT_EQ(pool_.version_stats().free_physical, 1u)
      << "clone target must come from the free list, freeing the old page";
  ASSERT_OK(CheckBufferPoolInvariants(pool_));
}

TEST_F(VersionedPoolTest, SnapshotsSeeTheirOwnEpochAcrossManyCommits) {
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'a');
  }
  std::vector<PageSnapshot> snaps;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageSnapshot snap, pool_.OpenSnapshot());
    snaps.push_back(std::move(snap));
    ASSERT_OK(pool_.BeginWriteBatch());
    {
      ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
      FillPage(&page, static_cast<char>('b' + i));
    }
    ASSERT_OK(pool_.CommitWriteBatch());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.Fetch(id, snaps[i]));
    EXPECT_EQ(page.data()[0], static_cast<char>('a' + i))
        << "snapshot " << i;
  }
  ASSERT_OK(CheckBufferPoolInvariants(pool_));
  snaps.clear();
  const VersionStats vs = pool_.version_stats();
  EXPECT_EQ(vs.pages_retired, vs.pages_reclaimed);
  EXPECT_EQ(vs.retired_pending, 0u);
}

TEST_F(VersionedPoolTest, AbortDiscardsTheClones) {
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'A');
  }
  ASSERT_OK(pool_.BeginWriteBatch());
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
    FillPage(&page, 'Z');
  }
  ASSERT_OK(pool_.AbortWriteBatch());
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.Fetch(id));
    EXPECT_EQ(page.data()[0], 'A');
  }
  EXPECT_EQ(pool_.version_stats().batches_committed, 0u);
  EXPECT_GT(pool_.version_stats().free_physical, 0u);
  ASSERT_OK(CheckBufferPoolInvariants(pool_));
}

TEST_F(VersionedPoolTest, BatchContractViolations) {
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'A');
  }
  // No batch open: FetchForWrite and Commit/Abort must fail.
  EXPECT_FALSE(pool_.FetchForWrite(id).ok());
  EXPECT_FALSE(pool_.CommitWriteBatch().ok());
  EXPECT_FALSE(pool_.AbortWriteBatch().ok());

  ASSERT_OK(pool_.BeginWriteBatch());
  EXPECT_FALSE(pool_.BeginWriteBatch().ok()) << "single writer";
  ASSERT_OK(pool_.AbortWriteBatch());
}

TEST_F(VersionedPoolTest, ResetRefusedUnderSnapshotOrBatch) {
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    FillPage(&page, 'A');
  }
  {
    ASSERT_OK_AND_ASSIGN(const PageSnapshot snap, pool_.OpenSnapshot());
    EXPECT_FALSE(pool_.Reset(32).ok());
  }
  ASSERT_OK(pool_.BeginWriteBatch());
  EXPECT_FALSE(pool_.Reset(32).ok());
  ASSERT_OK(pool_.AbortWriteBatch());
  EXPECT_OK(pool_.Reset(32));
}

TEST_F(VersionedPoolTest, FlushAllMirrorsNewestVersionToCanonicalPage) {
  // The version table is in-memory only: after FlushAll on a quiesced
  // pool, the newest committed bytes must sit at the logical id's own
  // disk page, or a reopened file would read a stale version. Three
  // commits guarantee the newest version lives on a non-canonical
  // physical page (clone targets alternate via the free list).
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'A');
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(pool_.BeginWriteBatch());
    {
      ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
      FillPage(&page, static_cast<char>('B' + i));
    }
    ASSERT_OK(pool_.CommitWriteBatch());
  }
  ASSERT_OK(pool_.FlushAll());
  Page raw;
  ASSERT_OK(disk_.ReadPage(id, &raw));
  EXPECT_EQ(raw.data()[0], 'D')
      << "canonical disk page must hold the newest committed version";
}

TEST_F(VersionedPoolTest, FlushAllMirrorsCrossAdoptedCanonicalPages) {
  // Epoch GC recycles retired identity pages through the free list, and
  // FetchForWrite adopts them as clone targets for OTHER logical pages —
  // so one chain's newest bytes can physically live on another chain's
  // canonical disk page. Three single-page batches build a mutual cycle
  // deterministically (the free list holds exactly one page at each
  // adoption): batch 1 retires a's identity page, batch 2 adopts it as
  // b's clone target, batch 3 adopts b's freshly retired identity page
  // as a's target. After that, a's newest bytes sit on disk page b and
  // vice versa; an in-place mirror would overwrite one chain's newest
  // bytes before reading them in EITHER iteration order, so only the
  // two-phase (read-all-then-write-all) mirror preserves both.
  PageId a, b;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    a = page.page_id();
    FillPage(&page, 'A');
  }
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    b = page.page_id();
    FillPage(&page, 'B');
  }
  auto rewrite = [&](PageId id, char value) {
    ASSERT_OK(pool_.BeginWriteBatch());
    {
      ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
      FillPage(&page, value);
    }
    ASSERT_OK(pool_.CommitWriteBatch());
  };
  rewrite(a, 'C');
  rewrite(b, 'D');
  rewrite(a, 'E');
  ASSERT_OK(pool_.FlushAll());
  Page raw;
  ASSERT_OK(disk_.ReadPage(a, &raw));
  EXPECT_EQ(raw.data()[0], 'E')
      << "canonical page of a must hold a's newest version";
  EXPECT_EQ(raw.data()[kPageSize - 1], 'E');
  ASSERT_OK(disk_.ReadPage(b, &raw));
  EXPECT_EQ(raw.data()[0], 'D')
      << "canonical page of b must hold b's newest version";
  EXPECT_EQ(raw.data()[kPageSize - 1], 'D');
}

TEST(VersionedPoolEdgeTest, FailedCloneLeavesCloneCountersInSync) {
  // A FetchForWrite whose clone-target pin fails must roll back without
  // counting the clone anywhere: the obs mirror counter is append-only,
  // so an increment-then-compensate scheme would leave it permanently
  // ahead of version_stats().cow_clones.
  MemDiskManager disk;
  BufferPool pool(&disk, 2);  // two frames: held pins can starve the clone
  PageId id, other;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    id = page.page_id();
    FillPage(&page, 'A');
  }
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.NewPage());
    other = page.page_id();
    FillPage(&page, 'X');
  }
  // Under ANNLIB_OBS_DISABLED the counter is a no-op stub; only the
  // version_stats() side of the sync contract is observable there.
#ifndef ANNLIB_OBS_DISABLED
  const uint64_t obs_before = obs::GetCounter("storage.cow_clones")->value();
#endif
  ASSERT_OK(pool.BeginWriteBatch());
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage held1, pool.Fetch(id));
    ASSERT_OK_AND_ASSIGN(PinnedPage held2, pool.Fetch(other));
    // The source pin hits held1's frame; the clone-target pin then finds
    // every frame pinned and fails.
    EXPECT_FALSE(pool.FetchForWrite(id).ok());
  }
  const VersionStats vs = pool.version_stats();
  EXPECT_EQ(vs.cow_clones, 0u);
#ifndef ANNLIB_OBS_DISABLED
  EXPECT_EQ(obs::GetCounter("storage.cow_clones")->value(), obs_before)
      << "obs mirror must not diverge from version_stats on a failed clone";
#endif
  // The rollback left the batch healthy: the clone works once the frames
  // free up, and the reserved physical page was returned for reuse.
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.FetchForWrite(id));
    FillPage(&page, 'B');
  }
  ASSERT_OK(pool.CommitWriteBatch());
  EXPECT_EQ(pool.version_stats().cow_clones, 1u);
#ifndef ANNLIB_OBS_DISABLED
  EXPECT_EQ(obs::GetCounter("storage.cow_clones")->value(), obs_before + 1);
#endif
  ASSERT_OK(CheckBufferPoolInvariants(pool));
}

TEST(SnapshotIsolationTest, PlainFetchRacingCommitsSeesCommittedBytes) {
  // Non-snapshot Fetch revalidates its pin against the version table, so
  // even racing commit+GC cycles that retire, reclaim, and recycle the
  // resolved physical page must never surface torn or recycled bytes: a
  // reader sees SOME fully committed fill value, and successive reads on
  // one thread never go backwards in commit order.
  MemDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId id;
  {
    auto created = pool.NewPage();
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    PinnedPage page = std::move(created).value();
    id = page.page_id();
    FillPage(&page, 0);
  }
  // Fill values are single signed-char bytes, so stay within [1, 127].
  constexpr int kCommits = 120;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> writer_failures{0};
  std::atomic<uint64_t> reader_failures{0};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> regressions{0};
  std::atomic<uint64_t> reads{0};

  auto reader = [&] {
    int last_seen = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto pinned = pool.Fetch(id);
      if (!pinned.ok()) {
        ++reader_failures;
        continue;
      }
      const char* data = pinned.value().data();
      const char first = data[0];
      bool uniform = true;
      for (size_t i = 1; i < kPageSize; ++i) {
        if (data[i] != first) {
          uniform = false;
          break;
        }
      }
      const int value = static_cast<int>(first);
      if (!uniform || value < 0 || value > kCommits) {
        ++torn;
      } else if (value < last_seen) {
        ++regressions;
      } else {
        last_seen = value;
      }
      ++reads;
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) readers.emplace_back(reader);
  std::thread writer([&] {
    for (int i = 1; i <= kCommits; ++i) {
      if (!pool.BeginWriteBatch().ok()) {
        ++writer_failures;
        break;
      }
      {
        auto clone = pool.FetchForWrite(id);
        if (!clone.ok()) {
          ++writer_failures;
          // Best-effort cleanup; the failure count above fails the test.
          (void)pool.AbortWriteBatch();
          break;
        }
        FillPage(&clone.value(), static_cast<char>(i));
      }
      if (!pool.CommitWriteBatch().ok()) {
        ++writer_failures;
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(writer_failures.load(), 0u);
  EXPECT_EQ(reader_failures.load(), 0u);
  EXPECT_EQ(torn.load(), 0u)
      << "plain Fetch must only ever surface fully committed bytes";
  EXPECT_EQ(regressions.load(), 0u)
      << "revalidated reads must not travel backwards in commit order";
  EXPECT_GT(reads.load(), 0u);

  // GC runs at commit and epoch release; a transient reader pin at the
  // final commit can defer one reclamation past the last trigger. Open
  // and drop a snapshot to run one more pass now that all pins are gone,
  // then the quiesce invariant must hold exactly.
  {
    ASSERT_OK_AND_ASSIGN(const PageSnapshot snap, pool.OpenSnapshot());
  }
  const VersionStats vs = pool.version_stats();
  EXPECT_EQ(vs.pages_retired, vs.pages_reclaimed);
  EXPECT_EQ(vs.retired_pending, 0u);
  ASSERT_OK(CheckBufferPoolInvariants(pool));
}

TEST_F(VersionedPoolTest, NewPageInsideBatchIsPrivateUntilCommit) {
  ASSERT_OK(pool_.BeginWriteBatch());
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.NewPage());
    id = page.page_id();
    FillPage(&page, 'N');
  }
  {
    // The creating batch can rewrite its own page without a clone.
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.FetchForWrite(id));
    EXPECT_EQ(page.data()[0], 'N');
  }
  EXPECT_EQ(pool_.version_stats().cow_clones, 0u);
  ASSERT_OK(pool_.CommitWriteBatch());
  ASSERT_OK_AND_ASSIGN(PinnedPage page, pool_.Fetch(id));
  EXPECT_EQ(page.data()[0], 'N');
}

// ---------------------------------------------------------------------------
// End-to-end: concurrent readers vs a writer applying batches must each
// observe one committed state, bit for bit.
// ---------------------------------------------------------------------------

constexpr int kNumBatches = 6;
constexpr int kInsertsPerBatch = 5;
constexpr int kDeletesPerBatch = 2;
constexpr int kK = 3;
constexpr int kNumQueries = 6;

struct UpdateScript {
  Dataset initial;                  ///< ids 0..n-1
  std::vector<UpdateBatch> batches;
  std::vector<Scalar> queries;      ///< kNumQueries * 2
};

/// The whole experiment is a deterministic function of the seed, so two
/// indexes built from the same script are page-for-page identical.
UpdateScript MakeScript(uint64_t seed) {
  UpdateScript script;
  script.initial = RandomDataset(2, 200, seed);
  Rng rng(seed + 1);
  uint64_t next_id = script.initial.size();
  // Deletes target ids inserted by an earlier batch (or the initial set),
  // chosen so no id is deleted twice: batch b deletes from the range
  // batch b-1 inserted.
  std::vector<uint64_t> last_inserted;
  for (size_t i = 0; i < script.initial.size(); ++i) {
    last_inserted.push_back(i);
  }
  std::vector<Scalar> last_coords(script.initial.coords());
  for (int b = 0; b < kNumBatches; ++b) {
    UpdateBatch batch(2);
    for (int d = 0; d < kDeletesPerBatch; ++d) {
      const size_t pick = rng.Next() % last_inserted.size();
      batch.AddDelete(last_coords.data() + pick * 2, last_inserted[pick]);
      last_inserted.erase(last_inserted.begin() + pick);
      last_coords.erase(last_coords.begin() + pick * 2,
                        last_coords.begin() + pick * 2 + 2);
    }
    std::vector<uint64_t> inserted;
    std::vector<Scalar> coords;
    for (int i = 0; i < kInsertsPerBatch; ++i) {
      Scalar p[2] = {rng.NextDouble(), rng.NextDouble()};
      batch.AddInsert(p, next_id);
      inserted.push_back(next_id);
      coords.insert(coords.end(), p, p + 2);
      ++next_id;
    }
    last_inserted = std::move(inserted);
    last_coords = std::move(coords);
    script.batches.push_back(std::move(batch));
  }
  for (int q = 0; q < kNumQueries; ++q) {
    script.queries.push_back(rng.NextDouble());
    script.queries.push_back(rng.NextDouble());
  }
  return script;
}

std::unique_ptr<DynamicIndex> BuildFromScript(const UpdateScript& script,
                                              NodeStore* store) {
  MbrqtOptions opts;
  opts.bucket_capacity = 8;
  Mbrqt tree(UnitSpace(2), opts);
  for (size_t i = 0; i < script.initial.size(); ++i) {
    EXPECT_OK(tree.Insert(script.initial.point(i), i));
  }
  auto created = DynamicIndex::Create(std::move(tree), store);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  return std::move(created).value();
}

/// kNN answers for every scripted query against one committed state.
using StateResults = std::vector<std::vector<Neighbor>>;

/// No gtest assertions here: this also runs on reader threads, where a
/// failing ASSERT/EXPECT is not thread-safe. Callers check the Status.
Status QueryState(const SpatialIndex& view, const UpdateScript& script,
                  StateResults* out) {
  out->assign(kNumQueries, {});
  for (int q = 0; q < kNumQueries; ++q) {
    SearchStats stats;
    const Status st = PointKnn(view, script.queries.data() + q * 2, kK,
                               kInf, &(*out)[q], &stats);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

bool SameResults(const StateResults& a, const StateResults& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      // Bit-identical: same neighbor ids AND the exact same doubles.
      if (a[q][i].first != b[q][i].first) return false;
      if (a[q][i].second != b[q][i].second) return false;
    }
  }
  return true;
}

void RunConcurrentIsolation(size_t num_readers) {
  const UpdateScript script = MakeScript(/*seed=*/777);

  // Stage 1 (sequential): the expected answers for every committed state,
  // keyed by the state's object count (each batch nets +3, so counts are
  // unique per state).
  std::map<uint64_t, StateResults> expected;
  {
    MemDiskManager disk;
    BufferPool pool(&disk, 256);
    NodeStore store(&pool);
    std::unique_ptr<DynamicIndex> index = BuildFromScript(script, &store);
    ASSERT_OK(QueryState(*index, script, &expected[index->num_objects()]));
    for (const UpdateBatch& batch : script.batches) {
      ASSERT_OK(index->ApplyBatch(batch));
      ASSERT_OK(QueryState(*index, script, &expected[index->num_objects()]));
    }
    ASSERT_EQ(expected.size(), static_cast<size_t>(kNumBatches + 1))
        << "object counts must identify states uniquely";
  }

  // Stage 2: an identical index, now with the batches applied by a writer
  // thread while readers query through snapshots.
  MemDiskManager disk;
  BufferPool pool(&disk, 256);
  NodeStore store(&pool);
  std::unique_ptr<DynamicIndex> index = BuildFromScript(script, &store);

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> unknown_states{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> open_failures{0};

  auto reader = [&] {
    while (true) {
      // Sample the flag BEFORE opening the snapshot: if the writer had
      // already finished, this iteration necessarily reads the final
      // committed state, so every reader exercises it at least once.
      const bool final_pass = writer_done.load(std::memory_order_acquire);
      auto snap = index->OpenSnapshot();
      if (!snap.ok()) {
        ++open_failures;
      } else {
        const IndexSnapshot isnap = std::move(snap).value();
        const SnapshotView view(index.get(), isnap);
        const auto it = expected.find(isnap.num_objects);
        if (it == expected.end()) {
          ++unknown_states;
        } else {
          StateResults got;
          if (!QueryState(view, script, &got).ok() ||
              !SameResults(got, it->second)) {
            ++mismatches;
          }
          ++reads;
        }
      }
      if (final_pass) break;
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(num_readers);
  for (size_t i = 0; i < num_readers; ++i) readers.emplace_back(reader);
  std::thread writer([&] {
    for (const UpdateBatch& batch : script.batches) {
      const Status st = index->ApplyBatch(batch);
      EXPECT_TRUE(st.ok()) << st.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(unknown_states.load(), 0u)
      << "every snapshot must correspond to a committed state";
  EXPECT_EQ(mismatches.load(), 0u)
      << "snapshot reads must be bit-identical to their committed state";
  EXPECT_EQ(open_failures.load(), 0u);
  EXPECT_GT(reads.load(), 0u);

  // Quiesce: with all snapshots released, epoch GC must have reclaimed
  // every retired page.
  const VersionStats vs = pool.version_stats();
  EXPECT_EQ(vs.pages_retired, vs.pages_reclaimed);
  EXPECT_EQ(vs.retired_pending, 0u);
  ASSERT_OK(CheckBufferPoolInvariants(pool));
}

TEST(SnapshotIsolationTest, ConcurrentReadersOneThread) {
  RunConcurrentIsolation(1);
}

TEST(SnapshotIsolationTest, ConcurrentReadersEightThreads) {
  RunConcurrentIsolation(8);
}

}  // namespace
}  // namespace ann
