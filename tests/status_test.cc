#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

#include "test_util.h"

namespace ann {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  const Status original = Status::IOError("disk gone");
  Status copy = original;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk gone");
  EXPECT_TRUE(original.IsIOError());  // copy did not steal

  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(std::move(r).ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  ANN_RETURN_NOT_OK(FailIfNegative(x));
  ANN_ASSIGN_OR_RETURN(*out, HalveEven(x));
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_OK(UseMacros(4, &out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(UseMacros(-1, &out).IsInvalidArgument());
  EXPECT_TRUE(UseMacros(3, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace ann
