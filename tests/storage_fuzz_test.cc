// Model-based randomized tests: the storage layer is driven with random
// operation sequences and checked against simple in-memory reference
// models after every step.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/node_store.h"
#include "test_util.h"

namespace ann {
namespace {

std::vector<char> RandomBlob(Rng* rng, size_t max_size) {
  std::vector<char> blob(rng->UniformInt(max_size + 1));
  for (auto& c : blob) c = static_cast<char>(rng->Next() & 0xFF);
  return blob;
}

class NodeStoreFuzzTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NodeStoreFuzzTest, RandomOpsMatchReferenceModel) {
  const size_t pool_frames = GetParam();
  MemDiskManager disk;
  BufferPool pool(&disk, pool_frames);
  NodeStore store(&pool);
  Rng rng(pool_frames * 31 + 7);

  std::unordered_map<NodeId, std::vector<char>> model;
  std::vector<NodeId> live;

  const int steps = FuzzIters(600);  // sanitizer CI runs a longer walk
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.UniformInt(10);
    if (op < 4 || live.empty()) {
      // Append (mix of small, page-sized and multi-page records).
      const size_t max_size =
          op % 2 == 0 ? 200 : (op % 3 == 0 ? 3 * kPageSize : kPageSize);
      std::vector<char> blob = RandomBlob(&rng, max_size);
      ASSERT_OK_AND_ASSIGN(const NodeId id,
                           store.Append(blob.data(), blob.size()));
      ASSERT_EQ(model.count(id), 0u) << "NodeId reused while live";
      model.emplace(id, std::move(blob));
      live.push_back(id);
    } else if (op < 7) {
      // Read a random live record.
      const NodeId id = live[rng.UniformInt(live.size())];
      std::vector<char> out;
      ASSERT_OK(store.Read(id, &out));
      EXPECT_EQ(out, model[id]) << "step " << step;
    } else if (op < 9) {
      // Update with a random new size (shrink, grow, overflow).
      const NodeId id = live[rng.UniformInt(live.size())];
      std::vector<char> blob = RandomBlob(&rng, 2 * kPageSize);
      ASSERT_OK(store.Update(id, blob.data(), blob.size()));
      model[id] = std::move(blob);
    } else {
      // Free a random live record.
      const size_t pick = rng.UniformInt(live.size());
      const NodeId id = live[pick];
      ASSERT_OK(store.Free(id));
      model.erase(id);
      live[pick] = live.back();
      live.pop_back();
      std::vector<char> out;
      EXPECT_TRUE(store.Read(id, &out).IsNotFound());
    }
  }

  // Final sweep: every live record intact, through a cold pool.
  ASSERT_OK(pool.Reset(pool_frames));
  for (const NodeId id : live) {
    std::vector<char> out;
    ASSERT_OK(store.Read(id, &out));
    EXPECT_EQ(out, model[id]);
  }
  EXPECT_EQ(store.record_count(), live.size());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, NodeStoreFuzzTest,
                         ::testing::Values(2, 4, 16, 256),
                         [](const auto& info) {
                           return "frames" + std::to_string(info.param);
                         });

class BufferPoolFuzzTest
    : public ::testing::TestWithParam<std::tuple<size_t, Replacement>> {};

TEST_P(BufferPoolFuzzTest, RandomPageTrafficMatchesReferenceModel) {
  const auto [pool_frames, replacement] = GetParam();
  MemDiskManager disk;
  BufferPool pool(&disk, pool_frames, replacement);
  Rng rng(pool_frames * 57 + 1);

  // Model: page id -> 64-bit stamp written into the page.
  std::map<PageId, uint64_t> model;

  const int steps = FuzzIters(2000);  // sanitizer CI runs a longer walk
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.UniformInt(10);
    if (op < 3 || model.empty()) {
      auto res = pool.NewPage();
      ASSERT_TRUE(res.ok());
      PinnedPage page = std::move(res).value();
      const uint64_t stamp = rng.Next();
      std::memcpy(page.data(), &stamp, 8);
      page.MarkDirty();
      model[page.page_id()] = stamp;
    } else if (op < 8) {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(model.size()));
      ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.Fetch(it->first));
      uint64_t stamp;
      std::memcpy(&stamp, page.data(), 8);
      EXPECT_EQ(stamp, it->second) << "page " << it->first;
      if (op == 7) {  // rewrite
        const uint64_t new_stamp = rng.Next();
        std::memcpy(page.data(), &new_stamp, 8);
        page.MarkDirty();
        it->second = new_stamp;
      }
    } else if (op == 8) {
      ASSERT_OK(pool.FlushAll());
    } else {
      // Occasionally hold several pins at once (within capacity).
      const size_t pins = 1 + rng.UniformInt(pool_frames - 1);
      std::vector<PinnedPage> held;
      for (size_t i = 0; i < pins && i < model.size(); ++i) {
        auto it = model.begin();
        std::advance(it, rng.UniformInt(model.size()));
        auto res = pool.Fetch(it->first);
        ASSERT_TRUE(res.ok());
        held.push_back(std::move(res).value());
      }
      EXPECT_LE(pool.pinned_pages(), pins);
    }
  }

  // Every page content must survive a full flush + cold re-read.
  ASSERT_OK(pool.Reset(pool_frames));
  for (const auto& [id, stamp] : model) {
    ASSERT_OK_AND_ASSIGN(PinnedPage page, pool.Fetch(id));
    uint64_t got;
    std::memcpy(&got, page.data(), 8);
    EXPECT_EQ(got, stamp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoolSizesAndPolicies, BufferPoolFuzzTest,
    ::testing::Combine(::testing::Values(2, 8, 64),
                       ::testing::Values(Replacement::kLru,
                                         Replacement::kClock)),
    [](const auto& info) {
      return "frames" + std::to_string(std::get<0>(info.param)) +
             ToString(std::get<1>(info.param));
    });

}  // namespace
}  // namespace ann
