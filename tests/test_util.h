#ifndef ANNLIB_TESTS_TEST_UTIL_H_
#define ANNLIB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "ann/brute_force.h"
#include "ann/result.h"
#include "common/geometry.h"
#include "common/random.h"

namespace ann {

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    const ::ann::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    const ::ann::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                    \
  ASSERT_OK_AND_ASSIGN_IMPL(ANN_CONCAT(_r_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)          \
  auto tmp = (rexpr);                                       \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();         \
  lhs = std::move(tmp).value()

/// Scales a fuzz test's default iteration count by the ANNLIB_FUZZ_ITERS
/// environment variable (an integer multiplier, clamped to [1, 1000]).
/// Sanitizer CI configs set it above 1 to buy extra coverage where the
/// instrumentation can actually catch something; unset means 1x.
inline int FuzzIters(int base) {
  static const int multiplier = [] {
    const char* env = std::getenv("ANNLIB_FUZZ_ITERS");
    if (env == nullptr) return 1;
    const long v = std::strtol(env, nullptr, 10);
    return static_cast<int>(std::clamp(v, 1L, 1000L));
  }();
  return base * multiplier;
}

/// Uniform random points in [0,1]^dim.
inline Dataset RandomDataset(int dim, size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  Scalar p[kMaxDim];
  for (size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) p[d] = rng.NextDouble();
    data.Append(p);
  }
  return data;
}

/// Random rect inside [lo, hi]^dim (possibly thin, never inverted).
inline Rect RandomRect(int dim, Rng* rng, Scalar lo = 0, Scalar hi = 1) {
  Rect r;
  r.dim = dim;
  for (int d = 0; d < dim; ++d) {
    Scalar a = rng->Uniform(lo, hi);
    Scalar b = rng->Uniform(lo, hi);
    if (a > b) std::swap(a, b);
    r.lo[d] = a;
    r.hi[d] = b;
  }
  return r;
}

/// Random point inside rect `r`.
inline void RandomPointIn(const Rect& r, Rng* rng, Scalar* p) {
  for (int d = 0; d < r.dim; ++d) p[d] = rng->Uniform(r.lo[d], r.hi[d]);
}

/// Checks `got` against exact AkNN `want` (both must cover the same query
/// ids): per-rank distances must agree to tolerance, and every reported
/// (id, dist) must be consistent with the actual point distance — this is
/// invariant under permutations of distance ties.
inline void ExpectResultsMatch(const Dataset& r, const Dataset& s,
                               std::vector<NeighborList> got,
                               const std::vector<NeighborList>& want,
                               Scalar tol = 1e-9) {
  SortByQueryId(&got);
  ASSERT_EQ(got.size(), want.size());
  const int dim = r.dim();
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].r_id, want[i].r_id);
    ASSERT_EQ(got[i].neighbors.size(), want[i].neighbors.size())
        << "query " << got[i].r_id;
    for (size_t j = 0; j < got[i].neighbors.size(); ++j) {
      EXPECT_NEAR(got[i].neighbors[j].second, want[i].neighbors[j].second,
                  tol)
          << "query " << got[i].r_id << " rank " << j;
      // Reported distance must match the reported id.
      const Scalar actual =
          std::sqrt(PointDist2(r.point(got[i].r_id),
                               s.point(got[i].neighbors[j].first), dim));
      EXPECT_NEAR(got[i].neighbors[j].second, actual, tol);
    }
  }
}

/// Convenience: brute-force ground truth + match check.
inline void ExpectExactAknn(const Dataset& r, const Dataset& s, int k,
                            std::vector<NeighborList> got) {
  std::vector<NeighborList> want;
  ASSERT_OK(BruteForceAknn(r, s, k, &want));
  ExpectResultsMatch(r, s, std::move(got), want);
}

}  // namespace ann

#endif  // ANNLIB_TESTS_TEST_UTIL_H_
