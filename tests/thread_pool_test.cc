#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ann {
namespace {

TEST(ResolveThreadCountTest, MapsOptionToWorkerCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(4), 4u);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // auto: hardware concurrency
  EXPECT_EQ(ResolveThreadCount(-3), 1u);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilQueueDrains) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      count.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 32);
  // The pool stays usable after a Wait.
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 33);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // Two tasks that must both be in flight to finish: each waits for the
  // other's arrival. A single-threaded executor would deadlock, so this
  // proves real parallelism (with a generous timeout guard).
  std::atomic<int> arrived{0};
  ThreadPool pool(2);
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&arrived] {
      arrived.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (arrived.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  std::vector<int> order;
  ThreadPool pool(1);
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace ann
