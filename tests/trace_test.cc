#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export/trace_json.h"
#include "obs/export/trace_summary.h"

namespace ann {
namespace {

// ---- exporter tests: operate on hand-built Traces, so they hold in both
// the instrumented and the ANNLIB_OBS_DISABLED build (mirroring how
// obs_test.cc tests the Snapshot exporters).

obs::SpanRecord MakeSpan(uint64_t id, uint64_t parent, const char* category,
                         const char* name, uint64_t start_ns, uint64_t dur_ns,
                         uint32_t lane) {
  obs::SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.category = category;
  s.name = name;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  s.lane = lane;
  return s;
}

TEST(TraceJsonTest, EmptyTraceIsStillAValidDocument) {
  EXPECT_EQ(obs::TraceEventsJson(obs::Trace{}),
            "{\"displayTimeUnit\": \"ns\", \"traceEvents\": "
            "[{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"args\": {\"name\": \"annlib\"}}]}");
}

TEST(TraceJsonTest, RendersMetadataSpansAndArgs) {
  obs::Trace trace;
  trace.lanes = {"main", "pool-0"};
  obs::SpanRecord root = MakeSpan(1, 0, "mba", "query", 0, 2000, 0);
  root.num_args = 2;
  root.args[0] = obs::SpanArg{"k", 1};
  root.args[1] = obs::SpanArg{"threads", 2};
  trace.spans.push_back(root);
  trace.spans.push_back(MakeSpan(2, 1, "mba", "gather", 1500, 250, 1));
  const std::string json = obs::TraceEventsJson(trace);

  // Lane metadata: one thread_name event per lane.
  EXPECT_NE(json.find("{\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"tid\": 0, "
                      "\"args\": {\"name\": \"main\"}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"pool-0\"}"), std::string::npos);
  // The root span: complete event with exact decimal-microsecond times
  // (2000 ns = 2.000 us) and its span args after the id pair.
  EXPECT_NE(json.find("{\"name\": \"query\", \"cat\": \"mba\", "
                      "\"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
                      "\"ts\": 0.000, \"dur\": 2.000, "
                      "\"args\": {\"span_id\": 1, \"parent_id\": 0, "
                      "\"k\": 1, \"threads\": 2}}"),
            std::string::npos);
  // Sub-microsecond values keep their nanosecond decimals.
  EXPECT_NE(json.find("\"ts\": 1.500, \"dur\": 0.250"), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\": 1"), std::string::npos);
}

TEST(TraceJsonTest, SortsSpansPerLaneParentFirst) {
  // Hand-built in scrambled order: the exporter must emit lane 0 before
  // lane 1, per-lane by start time, and the longer span first on a tie
  // (so a parent precedes the child it exactly overlaps).
  obs::Trace trace;
  trace.lanes = {"a", "b"};
  trace.spans.push_back(MakeSpan(4, 0, "t", "late_lane1", 500, 10, 1));
  trace.spans.push_back(MakeSpan(3, 1, "t", "tie_child", 100, 50, 0));
  trace.spans.push_back(MakeSpan(1, 0, "t", "tie_parent", 100, 200, 0));
  trace.spans.push_back(MakeSpan(2, 0, "t", "early_lane1", 50, 10, 1));
  const std::string json = obs::TraceEventsJson(trace);
  const size_t tie_parent = json.find("tie_parent");
  const size_t tie_child = json.find("tie_child");
  const size_t early = json.find("early_lane1");
  const size_t late = json.find("late_lane1");
  ASSERT_NE(tie_parent, std::string::npos);
  ASSERT_NE(tie_child, std::string::npos);
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(tie_parent, tie_child);  // longer-first on equal start
  EXPECT_LT(tie_child, early);       // lane 0 block precedes lane 1
  EXPECT_LT(early, late);            // per-lane start order
}

TEST(TraceSummaryTest, SelfTimeSubtractsSameLaneDirectChildren) {
  obs::Trace trace;
  trace.lanes = {"main"};
  trace.spans.push_back(MakeSpan(1, 0, "mba", "query", 0, 1000, 0));
  trace.spans.push_back(MakeSpan(2, 1, "mba", "gather", 100, 200, 0));
  trace.spans.push_back(MakeSpan(3, 1, "mba", "expand", 400, 100, 0));
  const std::vector<obs::PhaseSelfTime> phases =
      obs::SummarizeSelfTimes(trace);
  ASSERT_EQ(phases.size(), 3u);  // sorted by phase name
  EXPECT_EQ(phases[0].phase, "mba.expand");
  EXPECT_EQ(phases[0].total_ns, 100u);
  EXPECT_EQ(phases[0].self_ns, 100u);
  EXPECT_EQ(phases[1].phase, "mba.gather");
  EXPECT_EQ(phases[1].self_ns, 200u);
  EXPECT_EQ(phases[2].phase, "mba.query");
  EXPECT_EQ(phases[2].count, 1u);
  EXPECT_EQ(phases[2].total_ns, 1000u);
  EXPECT_EQ(phases[2].self_ns, 700u);  // 1000 - 200 - 100
}

TEST(TraceSummaryTest, SelfTimesTelescopeToRootDuration) {
  // Three-deep same-lane nesting: the self-times partition the root's
  // duration exactly — the identity ci/validate_trace.py checks on real
  // traces.
  obs::Trace trace;
  trace.lanes = {"main"};
  trace.spans.push_back(MakeSpan(1, 0, "mba", "query", 0, 1000, 0));
  trace.spans.push_back(MakeSpan(2, 1, "mba", "gather", 100, 500, 0));
  trace.spans.push_back(MakeSpan(3, 2, "mba", "filter", 200, 100, 0));
  uint64_t self_sum = 0;
  for (const obs::PhaseSelfTime& p : obs::SummarizeSelfTimes(trace)) {
    self_sum += p.self_ns;
  }
  EXPECT_EQ(self_sum, 1000u);
}

TEST(TraceSummaryTest, CrossLaneChildrenAreNotSubtracted) {
  // A ThreadPool task overlaps its parent's wall time on another core;
  // subtracting it would make the parent's self-time lie. Its duration is
  // attributed on its own lane instead.
  obs::Trace trace;
  trace.lanes = {"main", "pool-0"};
  trace.spans.push_back(MakeSpan(1, 0, "mba", "query", 0, 1000, 0));
  trace.spans.push_back(MakeSpan(2, 1, "threadpool", "task", 100, 800, 1));
  const std::vector<obs::PhaseSelfTime> phases =
      obs::SummarizeSelfTimes(trace);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].phase, "mba.query");
  EXPECT_EQ(phases[0].self_ns, 1000u);  // untouched by the cross-lane child
  EXPECT_EQ(phases[1].phase, "threadpool.task");
  EXPECT_EQ(phases[1].self_ns, 800u);
}

TEST(TraceSummaryTest, JsonShape) {
  obs::Trace trace;
  trace.lanes = {"main"};
  trace.spans.push_back(MakeSpan(1, 0, "mba", "query", 0, 2000000, 0));
  trace.dropped = 3;
  EXPECT_EQ(obs::TraceSummaryJson(trace),
            "{\"spans\": 1, \"dropped\": 3, \"phases\": "
            "{\"mba.query\": {\"count\": 1, \"total_ms\": 2, "
            "\"self_ms\": 2}}}");
}

TEST(SlowOpLogTest, KeepsTopNPerCategorySlowestFirst) {
  obs::Trace trace;
  trace.lanes = {"main"};
  trace.spans.push_back(MakeSpan(1, 0, "io", "read", 0, 10, 0));
  trace.spans.push_back(MakeSpan(2, 0, "io", "read", 20, 50, 0));
  trace.spans.push_back(MakeSpan(3, 0, "io", "write", 80, 30, 0));
  trace.spans.push_back(MakeSpan(4, 0, "io", "read", 120, 20, 0));
  trace.spans.push_back(MakeSpan(5, 0, "io", "read", 150, 40, 0));
  trace.spans.push_back(MakeSpan(6, 0, "mba", "query", 0, 200, 0));
  const obs::SlowOpLog log = obs::BuildSlowOpLog(trace, /*per_category=*/3);
  ASSERT_EQ(log.categories.size(), 2u);  // sorted by category name
  EXPECT_EQ(log.categories[0].first, "io");
  const std::vector<obs::SpanRecord>& io = log.categories[0].second;
  ASSERT_EQ(io.size(), 3u);
  EXPECT_EQ(io[0].id, 2u);  // dur 50
  EXPECT_EQ(io[1].id, 5u);  // dur 40
  EXPECT_EQ(io[2].id, 3u);  // dur 30
  EXPECT_EQ(log.categories[1].first, "mba");
  ASSERT_EQ(log.categories[1].second.size(), 1u);
  // A zero budget disables the log entirely.
  EXPECT_TRUE(obs::BuildSlowOpLog(trace, 0).empty());
}

TEST(SlowOpLogTest, EqualDurationsTieBreakById) {
  obs::Trace trace;
  trace.spans.push_back(MakeSpan(9, 0, "io", "read", 0, 40, 0));
  trace.spans.push_back(MakeSpan(2, 0, "io", "read", 50, 40, 0));
  const obs::SlowOpLog log = obs::BuildSlowOpLog(trace, 2);
  ASSERT_EQ(log.categories.size(), 1u);
  EXPECT_EQ(log.categories[0].second[0].id, 2u);
  EXPECT_EQ(log.categories[0].second[1].id, 9u);
}

TEST(SlowOpLogTest, TextListsSpansWithArgs) {
  obs::Trace trace;
  obs::SpanRecord s = MakeSpan(7, 0, "io", "read", 0, 1500000, 0);
  s.num_args = 1;
  s.args[0] = obs::SpanArg{"page", 42};
  trace.spans.push_back(s);
  const std::string text = obs::SlowOpLogToText(obs::BuildSlowOpLog(trace, 8));
  EXPECT_NE(text.find("slowest in category 'io'"), std::string::npos);
  EXPECT_NE(text.find("1.500 ms"), std::string::npos);
  EXPECT_NE(text.find("io.read"), std::string::npos);
  EXPECT_NE(text.find("(span 7)"), std::string::npos);
  EXPECT_NE(text.find("page=42"), std::string::npos);
}

#ifndef ANNLIB_OBS_DISABLED

// ---- live-session tests (instrumented build only).

/// Busy-waits so a span's measured duration is reliably non-zero (and
/// above small slow-op thresholds).
void SpinFor(std::chrono::nanoseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

const obs::SpanRecord* FindSpan(const obs::Trace& trace, uint64_t id) {
  for (const obs::SpanRecord& s : trace.spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

TEST(TraceSessionTest, SpansAreIdleWithoutASession) {
  ASSERT_EQ(obs::TraceSession::Active(), nullptr);
  ANNLIB_TRACE_SPAN_NAMED(span, "test", "idle");
  span.AddArg("ignored", 1);
  EXPECT_FALSE(span.recording());
}

TEST(TraceSessionTest, RecordsNestedSpansWithParentIdsAndArgs) {
  obs::SetCurrentThreadTraceName("main");
  obs::TraceSession session;
  session.Start();
  EXPECT_TRUE(session.active());
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    ANNLIB_TRACE_SPAN_NAMED(outer, "test", "outer");
    EXPECT_TRUE(outer.recording());
    outer.AddArg("k", 3);
    SpinFor(std::chrono::microseconds(2));
    {
      ANNLIB_TRACE_SPAN_NAMED(inner, "test", "inner");
      SpinFor(std::chrono::microseconds(2));
    }
    SpinFor(std::chrono::microseconds(2));
  }
  session.Stop();
  const obs::Trace trace = session.TakeTrace();
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.dropped, 0u);
  ASSERT_EQ(trace.lanes.size(), 1u);
  EXPECT_EQ(trace.lanes[0], "main");
  for (const obs::SpanRecord& s : trace.spans) {
    if (std::string(s.name) == "outer") outer_id = s.id;
    if (std::string(s.name) == "inner") inner_id = s.id;
  }
  const obs::SpanRecord* outer = FindSpan(trace, outer_id);
  const obs::SpanRecord* inner = FindSpan(trace, inner_id);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);  // nesting becomes parentage
  EXPECT_STREQ(outer->category, "test");
  ASSERT_EQ(outer->num_args, 1u);
  EXPECT_STREQ(outer->args[0].key, "k");
  EXPECT_EQ(outer->args[0].value, 3u);
  // Normalized to the trace origin, and the child interval is contained
  // in the parent's.
  EXPECT_EQ(outer->start_ns, 0u);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_GT(inner->dur_ns, 0u);
  // TakeTrace does not consume: a second call sees the same spans.
  EXPECT_EQ(session.TakeTrace().spans.size(), 2u);
}

TEST(TraceSessionTest, EarlyStopIsIdempotentAndExcludesTailWork) {
  obs::TraceSession session;
  session.Start();
  {
    ANNLIB_TRACE_SPAN_NAMED(span, "test", "stopped");
    SpinFor(std::chrono::microseconds(1));
    span.Stop();
    EXPECT_FALSE(span.recording());
    span.Stop();  // second stop must not record twice
    SpinFor(std::chrono::milliseconds(2));  // excluded tail work
  }
  session.Stop();
  const obs::Trace trace = session.TakeTrace();
  ASSERT_EQ(trace.spans.size(), 1u);
  // The 2 ms tail after Stop() is not part of the span.
  EXPECT_LT(trace.spans[0].dur_ns, 2000000u);
}

TEST(TraceSessionTest, MaxSpansCapCountsDrops) {
  obs::TraceSession::Options opts;
  opts.max_spans = 4;
  obs::TraceSession session(opts);
  session.Start();
  for (int i = 0; i < 10; ++i) {
    ANNLIB_TRACE_SPAN("test", "capped");
  }
  session.Stop();
  const obs::Trace trace = session.TakeTrace();
  EXPECT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.dropped, 6u);
}

TEST(TraceSessionTest, SlowOpBreachesAreCapturedOnline) {
  obs::TraceSession::Options opts;
  opts.slow_op_ns = 1000;  // 1 us
  obs::TraceSession session(opts);
  session.Start();
  {
    ANNLIB_TRACE_SPAN("test", "fast");  // well under 1 us? not guaranteed —
    // do not assert on this span either way.
  }
  for (int i = 0; i < 3; ++i) {
    ANNLIB_TRACE_SPAN_NAMED(span, "test", "slow");
    span.AddArg("i", static_cast<uint64_t>(i));
    SpinFor(std::chrono::microseconds(5));
  }
  session.Stop();
  const std::vector<obs::SpanRecord> breaches = session.ThresholdBreaches();
  EXPECT_GE(breaches.size(), 3u);
  int slow_seen = 0;
  for (const obs::SpanRecord& s : breaches) {
    EXPECT_GE(s.dur_ns, opts.slow_op_ns);
    if (std::string(s.name) == "slow") ++slow_seen;
  }
  EXPECT_EQ(slow_seen, 3);
}

TEST(TraceSessionTest, BreachRingIsBoundedAndKeepsNewest) {
  obs::TraceSession::Options opts;
  opts.slow_op_ns = 1;  // every span breaches
  obs::TraceSession session(opts);
  session.Start();
  for (int i = 0; i < 70; ++i) {
    ANNLIB_TRACE_SPAN("test", "breach");
    SpinFor(std::chrono::microseconds(1));
  }
  session.Stop();
  const std::vector<obs::SpanRecord> breaches = session.ThresholdBreaches();
  ASSERT_EQ(breaches.size(), 64u);  // ring capacity
  // Oldest-first over the surviving window: spans 7..70 of the 70.
  EXPECT_EQ(breaches.front().id, 7u);
  EXPECT_EQ(breaches.back().id, 70u);
}

TEST(TraceSessionTest, ThreadPoolTasksParentUnderTheSubmittingSpan) {
  obs::SetCurrentThreadTraceName("main");
  obs::TraceSession session;
  session.Start();
  uint64_t root_id = 0;
  {
    ANNLIB_TRACE_SPAN_NAMED(root, "mba", "query");
    ASSERT_TRUE(root.recording());
    {
      ThreadPool pool(2);
      for (int i = 0; i < 4; ++i) {
        pool.Submit([] {
          ANNLIB_TRACE_SPAN("test", "work");
          SpinFor(std::chrono::microseconds(5));
        });
      }
    }  // pool dtor joins all tasks
    root.Stop();
  }
  session.Stop();
  const obs::Trace trace = session.TakeTrace();
  for (const obs::SpanRecord& s : trace.spans) {
    if (std::string(s.name) == "query") root_id = s.id;
  }
  ASSERT_NE(root_id, 0u);

  // Every ThreadPool-wrapped task span parents under the root (the span
  // current at Submit time), even though it ran on another thread.
  int tasks = 0;
  int works = 0;
  for (const obs::SpanRecord& s : trace.spans) {
    if (std::string(s.name) == "task") {
      ++tasks;
      EXPECT_STREQ(s.category, "threadpool");
      EXPECT_EQ(s.parent, root_id);
      EXPECT_NE(s.lane, FindSpan(trace, root_id)->lane);
    }
    if (std::string(s.name) == "work") {
      ++works;
      const obs::SpanRecord* parent = FindSpan(trace, s.parent);
      ASSERT_NE(parent, nullptr);
      EXPECT_STREQ(parent->name, "task");
      EXPECT_EQ(parent->lane, s.lane);  // nested on the same worker
    }
  }
  EXPECT_EQ(tasks, 4);
  EXPECT_EQ(works, 4);

  // Worker lanes carry the pool's thread names; the submitting lane kept
  // its explicit name.
  ASSERT_GE(trace.lanes.size(), 2u);
  EXPECT_EQ(trace.lanes[0], "main");
  for (size_t i = 1; i < trace.lanes.size(); ++i) {
    EXPECT_EQ(trace.lanes[i].rfind("pool-", 0), 0u) << trace.lanes[i];
  }

  // The rendered trace-event JSON resolves the same structure.
  const std::string json = obs::TraceEventsJson(trace);
  EXPECT_NE(json.find("\"name\": \"query\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"task\""), std::string::npos);
}

TEST(TraceSessionTest, SequentialSessionsAreIndependent) {
  obs::TraceSession first;
  first.Start();
  { ANNLIB_TRACE_SPAN("test", "one"); }
  first.Stop();

  obs::TraceSession second;
  second.Start();
  EXPECT_GT(second.epoch(), first.epoch());
  { ANNLIB_TRACE_SPAN("test", "two"); }
  { ANNLIB_TRACE_SPAN("test", "three"); }
  second.Stop();

  const obs::Trace t1 = first.TakeTrace();
  const obs::Trace t2 = second.TakeTrace();
  ASSERT_EQ(t1.spans.size(), 1u);
  EXPECT_STREQ(t1.spans[0].name, "one");
  ASSERT_EQ(t2.spans.size(), 2u);
  // Span ids restart per session.
  EXPECT_EQ(t2.spans[0].id, 1u);
}

TEST(TraceSessionTest, CapturedContextIsInertAfterItsSessionStops) {
  obs::TraceContext stale;
  {
    obs::TraceSession session;
    session.Start();
    ANNLIB_TRACE_SPAN("test", "capture_here");
    stale = obs::CaptureTraceContext();
    session.Stop();
  }
  // Installing a context whose session is gone must be a harmless no-op
  // (this is what a straggling ThreadPool task would do).
  obs::ScopedTraceContext ctx(stale);
  ANNLIB_TRACE_SPAN_NAMED(span, "test", "after");
  EXPECT_FALSE(span.recording());
}

#else  // ANNLIB_OBS_DISABLED

// ---- stub behaviour: everything compiles, nothing records.

TEST(TraceSessionStubTest, EverythingIsInert) {
  obs::TraceSession session;
  session.Start();
  EXPECT_EQ(obs::TraceSession::Active(), nullptr);
  EXPECT_FALSE(session.active());
  {
    ANNLIB_TRACE_SPAN_NAMED(span, "test", "stub");
    span.AddArg("k", 1);
    EXPECT_FALSE(span.recording());
  }
  session.Stop();
  EXPECT_TRUE(session.TakeTrace().empty());
  EXPECT_TRUE(session.ThresholdBreaches().empty());
  const obs::TraceContext ctx = obs::CaptureTraceContext();
  obs::ScopedTraceContext scoped(ctx);
  obs::SetCurrentThreadTraceName("unused");
}

#endif  // ANNLIB_OBS_DISABLED

}  // namespace
}  // namespace ann
