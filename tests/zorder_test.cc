#include "common/zorder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "test_util.h"

namespace ann {
namespace {

Rect UnitBox(int dim) {
  Rect r;
  r.dim = dim;
  for (int d = 0; d < dim; ++d) {
    r.lo[d] = 0;
    r.hi[d] = 1;
  }
  return r;
}

TEST(ZOrderTest, BitsPerDimDividesBudget) {
  EXPECT_EQ(ZOrder(UnitBox(2)).bits_per_dim(), 21);  // capped
  EXPECT_EQ(ZOrder(UnitBox(4)).bits_per_dim(), 16);
  EXPECT_EQ(ZOrder(UnitBox(10)).bits_per_dim(), 6);
}

TEST(ZOrderTest, KeyIsMonotoneAlongDiagonal) {
  const ZOrder z(UnitBox(2));
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const Scalar p[2] = {i / 100.0, i / 100.0};
    const uint64_t key = z.Key(p);
    EXPECT_GE(key, prev) << "diagonal step " << i;
    prev = key;
  }
}

TEST(ZOrderTest, EqualPointsShareKeys) {
  const ZOrder z(UnitBox(3));
  const Scalar p[3] = {0.3, 0.7, 0.1};
  EXPECT_EQ(z.Key(p), z.Key(p));
}

TEST(ZOrderTest, OutOfBoxPointsClamp) {
  const ZOrder z(UnitBox(2));
  const Scalar below[2] = {-5, -5};
  const Scalar above[2] = {5, 5};
  const Scalar lo[2] = {0, 0};
  const Scalar hi[2] = {1, 1};
  EXPECT_EQ(z.Key(below), z.Key(lo));
  EXPECT_EQ(z.Key(above), z.Key(hi));
}

TEST(ZOrderTest, SortedOrderIsAPermutation) {
  const Dataset data = RandomDataset(3, 500, 21);
  const ZOrder z(data.BoundingBox());
  const std::vector<size_t> order = z.SortedOrder(data);
  ASSERT_EQ(order.size(), data.size());
  std::vector<bool> seen(data.size(), false);
  for (size_t idx : order) {
    ASSERT_LT(idx, data.size());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(ZOrderTest, SortedOrderImprovesLocality) {
  // Average distance between consecutive points in Z-order must be far
  // smaller than between consecutive points in random order.
  const Dataset data = RandomDataset(2, 4000, 99);
  const ZOrder z(data.BoundingBox());
  const std::vector<size_t> order = z.SortedOrder(data);
  double z_hops = 0, raw_hops = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    z_hops += std::sqrt(PointDist2(data.point(order[i - 1]),
                                   data.point(order[i]), 2));
    raw_hops += std::sqrt(PointDist2(data.point(i - 1), data.point(i), 2));
  }
  EXPECT_LT(z_hops, raw_hops / 5);
}

TEST(ZOrderTest, QuadrantOrderingIn2D) {
  // In 2-D with our interleave the key orders quadrants consistently:
  // points in the low half of dim 0 and dim 1 sort before the high half.
  const ZOrder z(UnitBox(2));
  const Scalar q00[2] = {0.2, 0.2};
  const Scalar q11[2] = {0.8, 0.8};
  EXPECT_LT(z.Key(q00), z.Key(q11));
}

}  // namespace
}  // namespace ann
